package autotune

import (
	"math"
	"path/filepath"
	"testing"

	"github.com/hanrepro/han/internal/cluster"
	"github.com/hanrepro/han/internal/coll"
	"github.com/hanrepro/han/internal/han"
	"github.com/hanrepro/han/internal/mpi"
)

func testEnv() Env { return NewEnv(cluster.Mini(4, 4), mpi.OpenMPI()) }

func smallSpace() Space {
	return Space{
		Msgs:  []int{4 << 10, 256 << 10, 1 << 20},
		FS:    []int{64 << 10, 256 << 10},
		IMods: []string{"libnbc", "adapt"},
		SMods: []string{"sm", "solo"},
		IBS:   []int{32 << 10},
	}
}

func TestExpandRespectsHeuristics(t *testing.T) {
	s := smallSpace()
	all := s.Expand(coll.Bcast, 1<<20, false, 4)
	pruned := s.Expand(coll.Bcast, 1<<20, true, 4)
	if len(pruned) >= len(all) {
		t.Fatalf("heuristics should prune: %d >= %d", len(pruned), len(all))
	}
	for _, c := range pruned {
		if c.Cfg.SMod == "solo" && c.Cfg.FS <= 512<<10 {
			t.Errorf("heuristic violated: solo with fs=%d", c.Cfg.FS)
		}
	}
	// fs never exceeds the message size.
	for _, c := range s.Expand(coll.Bcast, 4<<10, false, 4) {
		if c.Cfg.FS > 4<<10 {
			t.Errorf("fs %d exceeds message 4096", c.Cfg.FS)
		}
	}
}

func TestMeasureBcastTasksShapes(t *testing.T) {
	env := testEnv()
	meter := &Meter{}
	cfg := han.Config{FS: 64 << 10, IMod: "adapt", SMod: "sm", IBAlg: coll.AlgBinary, IBS: 32 << 10}
	bt := env.MeasureBcastTasks(cfg, meter)
	if len(bt.IB0) != 4 || len(bt.SB0) != 4 || len(bt.SBIBConc) != 4 {
		t.Fatalf("per-leader arrays wrong: %d %d %d", len(bt.IB0), len(bt.SB0), len(bt.SBIBConc))
	}
	if len(bt.SBIB) != SBIBSeriesLen-1 {
		t.Fatalf("sbib series length %d", len(bt.SBIB))
	}
	// ib(0) on the root's node finishes first; some other leader must be
	// slower (Fig 2: leaders finish at different times).
	slower := false
	for l := 1; l < 4; l++ {
		if bt.IB0[l] > bt.IB0[0] {
			slower = true
		}
		if bt.IB0[l] <= 0 || bt.SB0[l] <= 0 {
			t.Errorf("leader %d has non-positive task cost", l)
		}
	}
	if !slower {
		t.Error("all leaders finished ib(0) simultaneously; expected staggering")
	}
	if meter.Runs != 2 {
		t.Errorf("expected 2 benchmark runs, got %d", meter.Runs)
	}
	if meter.Virtual <= 0 {
		t.Error("meter did not accumulate virtual time")
	}
}

// The overlap claim of Fig 2: concurrent sb+ib costs less than the sum of
// the parts but more than the max (imperfect overlap).
func TestImperfectOverlapSBIB(t *testing.T) {
	env := NewEnv(cluster.Mini(6, 8), mpi.OpenMPI())
	cfg := han.Config{FS: 256 << 10, IMod: "adapt", SMod: "sm", IBAlg: coll.AlgBinary, IBS: 64 << 10}
	bt := env.MeasureBcastTasks(cfg, &Meter{})
	for l := 0; l < len(bt.IB0); l++ {
		sum := bt.IB0[l] + bt.SB0[l]
		mx := math.Max(bt.IB0[l], bt.SB0[l])
		conc := bt.SBIBConc[l]
		if conc >= sum {
			t.Errorf("leader %d: no overlap at all: conc=%v sum=%v", l, conc, sum)
		}
		if conc < mx*0.999 {
			t.Errorf("leader %d: overlap better than perfect: conc=%v max=%v", l, conc, mx)
		}
	}
}

// Fig 3: the sbib series stabilises — late iterations vary less than the
// warm-up ones.
func TestSBIBSeriesStabilises(t *testing.T) {
	env := NewEnv(cluster.Mini(6, 8), mpi.OpenMPI())
	cfg := han.Config{FS: 128 << 10, IMod: "adapt", SMod: "sm", IBAlg: coll.AlgChain, IBS: 64 << 10}
	bt := env.MeasureBcastTasks(cfg, &Meter{})
	k := len(bt.SBIB)
	l := len(bt.IB0) / 2 // a middle leader, like the paper's "node leader 2"
	lastDelta := math.Abs(bt.SBIB[k-1][l] - bt.SBIB[k-2][l])
	ref := bt.SBIB[k-1][l]
	if ref <= 0 {
		t.Fatal("stable sbib cost is zero")
	}
	if lastDelta/ref > 0.15 {
		t.Errorf("series has not stabilised: last delta %.1f%% of value", 100*lastDelta/ref)
	}
}

// The cost model must rank configurations like reality: its chosen optimum
// should be within a small factor of the measured optimum (the paper finds
// them identical in most cases).
func TestModelPicksNearOptimalBcastConfig(t *testing.T) {
	env := testEnv()
	space := smallSpace()
	m := 1 << 20
	cands := space.Expand(coll.Bcast, m, false, env.Spec.Nodes)
	meter := &Meter{}

	bestMeasured, bestEstimated := -1.0, -1.0
	var cfgMeasured, cfgEstimated han.Config
	measuredOf := make(map[han.Config]float64)
	for _, cand := range cands {
		meas := env.MeasureCollective(coll.Bcast, m, cand.Cfg, 2, meter)
		measuredOf[cand.Cfg] = meas
		if bestMeasured < 0 || meas < bestMeasured {
			bestMeasured, cfgMeasured = meas, cand.Cfg
		}
		bt := env.MeasureBcastTasks(cand.Cfg, meter)
		est := EstimateBcast(bt, m)
		if bestEstimated < 0 || est < bestEstimated {
			bestEstimated, cfgEstimated = est, cand.Cfg
		}
	}
	// The config chosen by the model must measure within 25% of the true
	// optimum.
	chosen := measuredOf[cfgEstimated]
	if chosen > bestMeasured*1.25 {
		t.Errorf("model picked %v (measured %.3gs), optimum %v (%.3gs)",
			cfgEstimated, chosen, cfgMeasured, bestMeasured)
	}
}

func TestRunSearchTaskBasedCheaperThanExhaustive(t *testing.T) {
	env := testEnv()
	space := smallSpace()
	kinds := []coll.Kind{coll.Bcast}
	ex := RunSearch(env, space, kinds, Exhaustive, SearchOpts{Iters: 2})
	tb := RunSearch(env, space, kinds, TaskBased, SearchOpts{})
	cb := RunSearch(env, space, kinds, Combined, SearchOpts{})
	if tb.Table.TuningCost >= ex.Table.TuningCost {
		t.Errorf("task-based tuning (%.3gs) should be cheaper than exhaustive (%.3gs)",
			tb.Table.TuningCost, ex.Table.TuningCost)
	}
	if cb.Table.TuningCost >= tb.Table.TuningCost {
		t.Errorf("combined tuning (%.3gs) should be cheaper than task-based (%.3gs)",
			cb.Table.TuningCost, tb.Table.TuningCost)
	}
	// Exhaustive search must report distribution stats.
	if len(ex.Stats) != len(space.Msgs) {
		t.Errorf("expected %d stat entries, got %d", len(space.Msgs), len(ex.Stats))
	}
	for in, st := range ex.Stats {
		if !(st.Best <= st.Median && st.Median <= st.Average*2) || st.Best <= 0 {
			t.Errorf("%v: implausible stats %+v", in, st)
		}
	}
	// Every search produced one entry per message size.
	if len(tb.Table.Entries) != len(space.Msgs) {
		t.Errorf("task-based table has %d entries", len(tb.Table.Entries))
	}
}

// Tuned accuracy (Fig 9): configurations selected by the task-based search
// must measure close to the exhaustive best.
func TestTaskBasedSelectionNearExhaustiveBest(t *testing.T) {
	env := testEnv()
	space := smallSpace()
	kinds := []coll.Kind{coll.Bcast}
	ex := RunSearch(env, space, kinds, Exhaustive, SearchOpts{Iters: 2})
	tb := RunSearch(env, space, kinds, TaskBased, SearchOpts{})
	meter := &Meter{}
	for i, e := range tb.Table.Entries {
		in := e.In
		meas := env.MeasureCollective(in.T, in.M, e.Cfg, 2, meter)
		best := ex.Stats[in].Best
		if meas > best*1.3 {
			t.Errorf("entry %d (%v): task-based pick measures %.3gs, exhaustive best %.3gs",
				i, in, meas, best)
		}
	}
}

func TestTableSaveLoadDecide(t *testing.T) {
	dir := t.TempDir()
	table := &Table{
		Machine: "Mini",
		Method:  "task",
		Entries: []Entry{
			{In: Input{N: 4, P: 4, M: 4 << 10, T: coll.Bcast}, Cfg: han.Config{FS: 4 << 10, IMod: "libnbc", SMod: "sm", IBAlg: coll.AlgBinomial}},
			{In: Input{N: 4, P: 4, M: 1 << 20, T: coll.Bcast}, Cfg: han.Config{FS: 256 << 10, IMod: "adapt", SMod: "solo", IBAlg: coll.AlgBinary, IBS: 64 << 10}},
		},
	}
	path := filepath.Join(dir, "table.json")
	if err := table.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 2 || got.Machine != "Mini" {
		t.Fatalf("round trip lost data: %+v", got)
	}
	// Nearest-in-log-space interpolation.
	small := got.Decide(coll.Bcast, 2<<10)
	if small.IMod != "libnbc" {
		t.Errorf("2KB should pick the 4KB entry, got %+v", small)
	}
	big := got.Decide(coll.Bcast, 8<<20)
	if big.IMod != "adapt" || big.SMod != "solo" {
		t.Errorf("8MB should pick the 1MB entry, got %+v", big)
	}
	// FS clamped to message size.
	tiny := got.Decide(coll.Bcast, 512)
	if tiny.FS > 512 {
		t.Errorf("FS not clamped: %d", tiny.FS)
	}
	// Unknown kind falls back to the default decision.
	fb := got.Decide(coll.Allreduce, 1<<20)
	if fb.IMod == "" {
		t.Error("fallback decision empty")
	}
}

func TestEstimateAllreduceDegenerateSmallU(t *testing.T) {
	env := testEnv()
	cfg := han.Config{FS: 64 << 10, IMod: "adapt", SMod: "sm", IBAlg: coll.AlgBinary, IBS: 32 << 10}
	at := env.MeasureAllreduceTasks(cfg, &Meter{})
	// u = 1, 2, 3 must produce increasing, positive estimates.
	prev := 0.0
	for _, m := range []int{64 << 10, 128 << 10, 192 << 10, 640 << 10} {
		est := EstimateAllreduce(at, m)
		if est <= prev {
			t.Errorf("estimate not increasing at m=%d: %v <= %v", m, est, prev)
		}
		prev = est
	}
}

func TestAllreduceModelNearMeasured(t *testing.T) {
	env := testEnv()
	cfg := han.Config{FS: 256 << 10, IMod: "adapt", SMod: "solo", IBAlg: coll.AlgBinary, IBS: 64 << 10, IRS: 64 << 10}
	meter := &Meter{}
	at := env.MeasureAllreduceTasks(cfg, meter)
	m := 4 << 20
	est := EstimateAllreduce(at, m)
	meas := env.MeasureCollective(coll.Allreduce, m, cfg, 2, meter)
	ratio := est / meas
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("allreduce model off by more than 2x: est=%.3gs meas=%.3gs", est, meas)
	}
}

func TestExpandIncludesUnsegmentedSmall(t *testing.T) {
	s := smallSpace()
	m := 512 // smaller than every FS entry
	cands := s.Expand(coll.Bcast, m, false, 4)
	if len(cands) == 0 {
		t.Fatal("no candidates for tiny message")
	}
	for _, c := range cands {
		if c.Cfg.FS != m {
			t.Errorf("tiny-message candidate with fs=%d", c.Cfg.FS)
		}
		if c.Cfg.IBS > c.Cfg.FS {
			t.Errorf("ibs %d exceeds fs %d", c.Cfg.IBS, c.Cfg.FS)
		}
	}
}

func TestMeterAccumulatesAcrossMeasurements(t *testing.T) {
	env := testEnv()
	meter := &Meter{}
	cfg := han.Config{FS: 64 << 10, IMod: "libnbc", SMod: "sm", IBAlg: coll.AlgBinomial}
	_ = env.MeasureCollective(coll.Bcast, 256<<10, cfg, 2, meter)
	v1, r1 := meter.Virtual, meter.Runs
	_ = env.MeasureCollective(coll.Bcast, 256<<10, cfg, 2, meter)
	if meter.Virtual <= v1 || meter.Runs != r1+1 {
		t.Errorf("meter did not accumulate: %+v after %v/%d", meter, v1, r1)
	}
}

func TestSegmentsOf(t *testing.T) {
	if got := SegmentsOf(han.Config{FS: 100}, 1000); got != 10 {
		t.Errorf("SegmentsOf = %d, want 10", got)
	}
	if got := SegmentsOf(han.Config{FS: 0}, 1000); got != 1 {
		t.Errorf("unsegmented SegmentsOf = %d, want 1", got)
	}
	if got := SegmentsOf(han.Config{FS: 2000}, 1000); got != 1 {
		t.Errorf("oversized-fs SegmentsOf = %d, want 1", got)
	}
}

func TestEstimateBcastSingleSegment(t *testing.T) {
	env := testEnv()
	cfg := han.Config{FS: 1 << 20, IMod: "adapt", SMod: "sm", IBAlg: coll.AlgBinary, IBS: 64 << 10}
	bt := env.MeasureBcastTasks(cfg, &Meter{})
	// u == 1: the estimate is ib + sb with no steady-state term, and must
	// still be positive and below the u=4 estimate.
	e1 := EstimateBcast(bt, 1<<20)
	e4 := EstimateBcast(bt, 4<<20)
	if e1 <= 0 || e4 <= e1 {
		t.Errorf("estimates not ordered: u1=%v u4=%v", e1, e4)
	}
}
