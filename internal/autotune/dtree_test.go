package autotune

import (
	"strings"
	"testing"

	"github.com/hanrepro/han/internal/coll"
	"github.com/hanrepro/han/internal/han"
)

func dtreeTable() *Table {
	cfg := func(fs int, imod string) han.Config {
		return han.Config{FS: fs, IMod: imod, SMod: "sm", IBAlg: coll.AlgBinomial}
	}
	return &Table{
		Machine: "test",
		Entries: []Entry{
			{In: Input{N: 4, P: 4, M: 64, T: coll.Bcast}, Cfg: cfg(64, "libnbc")},
			{In: Input{N: 4, P: 4, M: 4 << 10, T: coll.Bcast}, Cfg: cfg(4<<10, "libnbc")},
			{In: Input{N: 4, P: 4, M: 256 << 10, T: coll.Bcast}, Cfg: cfg(64<<10, "adapt")},
			{In: Input{N: 4, P: 4, M: 4 << 20, T: coll.Bcast}, Cfg: cfg(512<<10, "adapt")},
		},
	}
}

func TestDTreeLosslessMatchesTable(t *testing.T) {
	table := dtreeTable()
	tree, err := BuildDTree(table, coll.Bcast, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range table.Entries {
		got := tree.Decide(e.In.M)
		want := table.Decide(coll.Bcast, e.In.M)
		if got != want {
			t.Errorf("m=%d: tree %v, table %v", e.In.M, got, want)
		}
	}
	// In-between sizes pick a sampled neighbour's config.
	mid := tree.Decide(32 << 10)
	if mid.IMod != "libnbc" && mid.IMod != "adapt" {
		t.Errorf("interpolated decision not from the table: %+v", mid)
	}
}

func TestDTreeDepthCapShrinksTree(t *testing.T) {
	table := dtreeTable()
	full, _ := BuildDTree(table, coll.Bcast, 0)
	capped, _ := BuildDTree(table, coll.Bcast, 1)
	if capped.Nodes() >= full.Nodes() {
		t.Errorf("depth cap did not shrink the tree: %d >= %d", capped.Nodes(), full.Nodes())
	}
	// A depth-1 tree still decides, everywhere, with configs from the table.
	for _, m := range []int{1, 1 << 10, 1 << 20, 64 << 20} {
		cfg := capped.Decide(m)
		if cfg.IMod == "" {
			t.Errorf("empty decision at m=%d", m)
		}
		if cfg.FS > m {
			t.Errorf("FS not clamped at m=%d: %d", m, cfg.FS)
		}
	}
}

func TestDTreeDecisionFuncFallsBack(t *testing.T) {
	tree, _ := BuildDTree(dtreeTable(), coll.Bcast, 0)
	df := tree.DecisionFunc()
	if got := df(coll.Bcast, 4<<20); got.IMod != "adapt" {
		t.Errorf("bcast decision wrong: %+v", got)
	}
	// Other kinds fall back to the default decision.
	if got := df(coll.Allreduce, 4<<20); got.IMod == "" {
		t.Error("fallback decision empty")
	}
}

func TestDTreeStringRendersDecisionFunction(t *testing.T) {
	tree, _ := BuildDTree(dtreeTable(), coll.Bcast, 0)
	s := tree.String()
	for _, want := range []string{"decide_bcast", "if m <=", "return", "adapt"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, s)
		}
	}
}

func TestDTreeNoEntries(t *testing.T) {
	if _, err := BuildDTree(&Table{}, coll.Bcast, 0); err == nil {
		t.Fatal("expected error for empty table")
	}
}

func TestIsqrtProduct(t *testing.T) {
	cases := [][3]int{{4, 16, 8}, {64, 256, 128}, {1 << 20, 4 << 20, 2 << 20}}
	for _, c := range cases {
		if got := isqrtProduct(c[0], c[1]); got != c[2] {
			t.Errorf("isqrtProduct(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}
