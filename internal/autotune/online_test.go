package autotune

import (
	"bytes"
	"testing"

	"github.com/hanrepro/han/internal/cluster"
	"github.com/hanrepro/han/internal/coll"
	"github.com/hanrepro/han/internal/han"
	"github.com/hanrepro/han/internal/mpi"
	"github.com/hanrepro/han/internal/sim"
)

func onlineSpace() Space {
	return Space{
		Msgs:  []int{1 << 20},
		FS:    []int{256 << 10, 1 << 20},
		IMods: []string{"libnbc", "adapt"},
		SMods: []string{"sm"},
		IBS:   []int{64 << 10},
	}
}

// runOnline runs `calls` broadcasts of size m under the online tuner and
// returns the per-call durations (max across ranks) plus the tuner.
func runOnline(t *testing.T, spec cluster.Spec, m, calls int) ([]float64, *OnlineTuner) {
	t.Helper()
	eng := sim.New()
	w := mpi.NewWorld(cluster.NewMachine(eng, spec), mpi.OpenMPI())
	h := han.New(w)
	tuner := NewOnlineTuner(h, onlineSpace())
	durs := make([]float64, calls)
	w.Start(func(p *mpi.Proc) {
		c := w.World()
		for i := 0; i < calls; i++ {
			c.Barrier(p)
			t0 := p.Now()
			tuner.Bcast(p, mpi.Phantom(m), 0)
			if d := float64(p.Now() - t0); d > durs[i] {
				durs[i] = d
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return durs, tuner
}

func TestOnlineTunerConvergesToGoodConfig(t *testing.T) {
	spec := cluster.Mini(4, 4)
	m := 1 << 20
	env := NewEnv(spec, mpi.OpenMPI())
	cands := onlineSpace().Expand(coll.Bcast, m, true, spec.Nodes)
	calls := len(cands)*2 + 6
	durs, tuner := runOnline(t, spec, m, calls)
	if !tuner.Converged(coll.Bcast, m) {
		t.Fatal("tuner did not converge")
	}
	chosen := tuner.Chosen(coll.Bcast, m)
	// The chosen config must measure within 25% of the best candidate.
	meter := &Meter{}
	best := -1.0
	for _, cand := range cands {
		d := env.MeasureCollective(coll.Bcast, m, cand.Cfg, 2, meter)
		if best < 0 || d < best {
			best = d
		}
	}
	got := env.MeasureCollective(coll.Bcast, m, chosen, 2, meter)
	if got > best*1.25 {
		t.Errorf("online pick %v measures %.3g, best %.3g", chosen, got, best)
	}
	// Post-convergence calls must be no slower than the average trial call
	// (the convergence period is the cost of online tuning).
	trial := 0.0
	for _, d := range durs[:len(cands)*2] {
		trial += d
	}
	trial /= float64(len(cands) * 2)
	settled := durs[len(durs)-1]
	if settled > trial {
		t.Errorf("settled call %.3g slower than average trial call %.3g", settled, trial)
	}
}

func TestOnlineTunerDeliversDataDuringTrials(t *testing.T) {
	// Correctness must hold from call one, long before convergence.
	spec := cluster.Mini(2, 3)
	eng := sim.New()
	w := mpi.NewWorld(cluster.NewMachine(eng, spec), mpi.OpenMPI())
	h := han.New(w)
	tuner := NewOnlineTuner(h, onlineSpace())
	payload := make([]byte, 2000)
	for i := range payload {
		payload[i] = byte(i * 11)
	}
	w.Start(func(p *mpi.Proc) {
		for i := 0; i < 5; i++ {
			buf := make([]byte, len(payload))
			if p.Rank == 0 {
				copy(buf, payload)
			}
			tuner.Bcast(p, mpi.Bytes(buf), 0)
			if !bytes.Equal(buf, payload) {
				t.Errorf("call %d rank %d: payload corrupted", i, p.Rank)
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineTunerAllreduce(t *testing.T) {
	spec := cluster.Mini(2, 2)
	ranks := spec.Ranks()
	eng := sim.New()
	w := mpi.NewWorld(cluster.NewMachine(eng, spec), mpi.OpenMPI())
	h := han.New(w)
	tuner := NewOnlineTuner(h, onlineSpace())
	w.Start(func(p *mpi.Proc) {
		for i := 0; i < 4; i++ {
			vals := []float64{float64(p.Rank), float64(p.Rank * 2)}
			sbuf := mpi.Bytes(mpi.EncodeFloat64s(vals))
			rbuf := mpi.Bytes(make([]byte, sbuf.N))
			tuner.Allreduce(p, sbuf, rbuf, mpi.OpSum, mpi.Float64)
			got := mpi.DecodeFloat64s(rbuf.B)
			want := float64(ranks*(ranks-1)) / 2
			if got[0] != want || got[1] != 2*want {
				t.Errorf("call %d rank %d: got %v", i, p.Rank, got)
				return
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
