package autotune

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hanrepro/han/internal/coll"
	"github.com/hanrepro/han/internal/han"
)

// DTree encodes a lookup table's decisions for one collective kind as a
// binary decision tree over the message size — the compact runtime decision
// functions of Pjesivac-Grbovic et al. (the quadtree/decision-tree encoding
// work the paper cites for autotuning step 2). A full-depth tree reproduces
// the table exactly; capping the depth trades decision accuracy for a
// smaller, faster decision function, which is the trade-off those papers
// study.
type DTree struct {
	Kind coll.Kind
	root *dnode
}

type dnode struct {
	leaf      bool
	cfg       han.Config
	threshold int // go left when m <= threshold
	left      *dnode
	right     *dnode
}

// BuildDTree builds a decision tree from the table's entries for the given
// kind. maxDepth <= 0 means unlimited (lossless); smaller depths merge
// adjacent size classes, keeping the configuration of the widest range.
func BuildDTree(t *Table, kind coll.Kind, maxDepth int) (*DTree, error) {
	var entries []Entry
	for _, e := range t.Entries {
		if e.In.T == kind {
			entries = append(entries, e)
		}
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("autotune: table has no entries for %v", kind)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].In.M < entries[j].In.M })
	if maxDepth <= 0 {
		maxDepth = -1 // unlimited: never hits the depth cutoff
	}
	return &DTree{Kind: kind, root: buildNode(entries, maxDepth)}, nil
}

func buildNode(entries []Entry, depthLeft int) *dnode {
	if len(entries) == 1 || depthLeft == 0 || allSameCfg(entries) {
		return &dnode{leaf: true, cfg: majorityCfg(entries)}
	}
	mid := len(entries) / 2
	// Split between the two middle sampled sizes, geometric midpoint.
	threshold := isqrtProduct(entries[mid-1].In.M, entries[mid].In.M)
	return &dnode{
		threshold: threshold,
		left:      buildNode(entries[:mid], depthLeft-1),
		right:     buildNode(entries[mid:], depthLeft-1),
	}
}

func allSameCfg(entries []Entry) bool {
	for _, e := range entries[1:] {
		if e.Cfg != entries[0].Cfg {
			return false
		}
	}
	return true
}

// majorityCfg returns the most frequent configuration (first occurrence
// wins ties, favouring smaller sizes, which are called more often).
func majorityCfg(entries []Entry) han.Config {
	counts := make(map[han.Config]int)
	best := entries[0].Cfg
	for _, e := range entries {
		counts[e.Cfg]++
		if counts[e.Cfg] > counts[best] {
			best = e.Cfg
		}
	}
	return best
}

// isqrtProduct returns round(sqrt(a*b)) without overflow for message sizes.
func isqrtProduct(a, b int) int {
	x := float64(a) * float64(b)
	r := 1
	for float64(r)*float64(r) < x {
		r <<= 1
	}
	// binary refine
	lo, hi := r>>1, r
	for lo < hi {
		mid := (lo + hi) / 2
		if float64(mid)*float64(mid) < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Decide walks the tree for an m-byte message, clamping the segment size to
// the message as Table.Decide does.
func (d *DTree) Decide(m int) han.Config {
	n := d.root
	for !n.leaf {
		if m <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	cfg := n.cfg
	if cfg.FS > m {
		cfg.FS = m
	}
	return cfg
}

// DecisionFunc adapts the tree to han.DecisionFunc for the tree's kind,
// falling back to the default decision for other kinds.
func (d *DTree) DecisionFunc() han.DecisionFunc {
	return func(kind coll.Kind, m int) han.Config {
		if kind == d.Kind {
			return d.Decide(m)
		}
		return han.DefaultDecision(kind, m)
	}
}

// Nodes counts tree nodes (the size metric the encoding papers optimise).
func (d *DTree) Nodes() int { return countNodes(d.root) }

func countNodes(n *dnode) int {
	if n.leaf {
		return 1
	}
	return 1 + countNodes(n.left) + countNodes(n.right)
}

// String renders the tree as the nested if/else decision function the
// encoding would be code-generated into.
func (d *DTree) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "decide_%s(m):\n", d.Kind)
	renderNode(&b, d.root, 1)
	return b.String()
}

func renderNode(b *strings.Builder, n *dnode, depth int) {
	ind := strings.Repeat("  ", depth)
	if n.leaf {
		fmt.Fprintf(b, "%sreturn {%s}\n", ind, n.cfg)
		return
	}
	fmt.Fprintf(b, "%sif m <= %s:\n", ind, han.SizeString(n.threshold))
	renderNode(b, n.left, depth+1)
	fmt.Fprintf(b, "%selse:\n", ind)
	renderNode(b, n.right, depth+1)
}
