package autotune

import (
	"sync"

	"github.com/hanrepro/han/internal/coll"
	"github.com/hanrepro/han/internal/han"
	"github.com/hanrepro/han/internal/mpi"
	"github.com/hanrepro/han/internal/sim"
)

// Meter accumulates the cost of benchmarking: the total virtual machine
// time consumed and the number of individual benchmark runs. It is what
// Fig 8 reports for each tuning method.
//
// Accumulation is safe under concurrent measurement jobs, but note that
// float addition is not associative: a parallel sweep that wants
// byte-identical totals across worker counts must give each job its own
// Meter and Merge them in canonical order afterwards (RunSearch does).
// Always pass Meters by pointer; the mutex makes copies invalid.
type Meter struct {
	mu      sync.Mutex
	Virtual float64 // seconds of simulated machine time
	Runs    int
}

func (m *Meter) add(t sim.Time) {
	if m != nil {
		m.mu.Lock()
		m.Virtual += float64(t)
		m.Runs++
		m.mu.Unlock()
	}
}

// Merge folds another meter's totals into m. RunSearch's serial merge
// phase uses it to combine per-job meters in canonical enumeration order,
// which is what keeps TuningCost byte-identical across worker counts.
func (m *Meter) Merge(d *Meter) {
	if m == nil || d == nil {
		return
	}
	d.mu.Lock()
	v, r := d.Virtual, d.Runs
	d.mu.Unlock()
	m.mu.Lock()
	m.Virtual += v
	m.Runs += r
	m.mu.Unlock()
}

// SBIBSeriesLen is how many pipeline iterations the task benchmark runs to
// observe the sbib stabilisation of Fig 3.
const SBIBSeriesLen = 8

// BcastTasks holds the per-leader empirical task costs of one MPI_Bcast
// configuration — the data behind Fig 2 and the inputs of equation (3).
type BcastTasks struct {
	Cfg han.Config
	// IB0 is the cost of the first inter-node broadcast, per leader.
	IB0 []float64
	// SB0 is the cost of a lone intra-node broadcast, per leader.
	SB0 []float64
	// SBIBConc is the naive concurrent sb+ib measurement with simultaneous
	// starts (no task history) — Fig 2's green bars.
	SBIBConc []float64
	// SBIB[i][l] is the cost of sbib(i+1) on leader l measured inside the
	// real pipeline (with ib(0)..sbib(i) history) — Fig 2's red bars and
	// the Fig 3 series.
	SBIB [][]float64
}

// StableSBIB returns the stabilised per-leader sbib cost (the sbib(s) of
// equation 3): the mean of the second half of the series, past the pipeline
// warm-up.
func (bt BcastTasks) StableSBIB() []float64 {
	if len(bt.SBIB) == 0 {
		return bt.SBIBConc
	}
	nLeaders := len(bt.SBIB[0])
	out := make([]float64, nLeaders)
	half := len(bt.SBIB) / 2
	cnt := 0
	for i := half; i < len(bt.SBIB); i++ {
		for l := 0; l < nLeaders; l++ {
			out[l] += bt.SBIB[i][l]
		}
		cnt++
	}
	for l := range out {
		out[l] /= float64(cnt)
	}
	return out
}

// MeasureBcastTasks benchmarks the three task types of MPI_Bcast under cfg
// on the environment's machine. Each task cost is measured once (the
// simulation is noise-free); the sbib series is measured inside a real
// SBIBSeriesLen-segment pipeline so that the staggered leader start times
// and warm-up effects are captured, as section III-A2 prescribes.
func (e Env) MeasureBcastTasks(cfg han.Config, meter *Meter) BcastTasks {
	nodes := e.Spec.Nodes
	bt := BcastTasks{
		Cfg:      cfg,
		IB0:      make([]float64, nodes),
		SB0:      make([]float64, nodes),
		SBIBConc: make([]float64, nodes),
	}
	for i := 0; i < SBIBSeriesLen-1; i++ {
		bt.SBIB = append(bt.SBIB, make([]float64, nodes))
	}
	leaderIdx := func(p *mpi.Proc) int { return p.Node() }

	// Lone ib, lone sb, and the naive concurrent measurement share a world.
	t := e.runWorld(func(h *han.HAN, p *mpi.Proc) {
		if d := h.TimeIB(p, cfg); d > 0 {
			bt.IB0[leaderIdx(p)] = float64(d)
		}
		if d := h.TimeSB(p, cfg); h.W.Mach.IsNodeLeader(p.Rank) {
			bt.SB0[leaderIdx(p)] = float64(d)
		}
		if d := h.TimeConcurrentSBIB(p, cfg); h.W.Mach.IsNodeLeader(p.Rank) {
			bt.SBIBConc[leaderIdx(p)] = float64(d)
		}
	})
	meter.add(t)

	// The pipelined sbib series (includes ib(0) history automatically).
	t = e.runWorld(func(h *han.HAN, p *mpi.Proc) {
		steps, err := h.BcastSteps(p, SBIBSeriesLen, cfg)
		if err != nil {
			// The benchmark enumerates configurations from the tuner's own
			// search space, so a rejected one is a programming error.
			panic(err)
		}
		if steps == nil {
			return
		}
		l := leaderIdx(p)
		// steps = [ib(0), sbib(1..k-1), sb(last)]
		for i := 1; i < len(steps)-1; i++ {
			bt.SBIB[i-1][l] = float64(steps[i])
		}
	})
	meter.add(t)
	return bt
}

// AllreduceTasks holds the per-leader empirical task costs of one
// MPI_Allreduce configuration — the inputs of equation (4).
type AllreduceTasks struct {
	Cfg han.Config
	// Steps[t][l] is the duration of pipeline step t on leader l for a
	// SBIBSeriesLen-segment run: steps 0..2 are sr, irsr, ibirsr; steps
	// 3..u-1 are sbibirsr (stabilising); the last three are the drain
	// tasks sbibir, sbib, sb.
	Steps [][]float64
}

// StableSBIBIRSR returns the stabilised per-leader sbibirsr cost.
func (at AllreduceTasks) StableSBIBIRSR() []float64 {
	u := len(at.Steps) - 3
	nLeaders := len(at.Steps[0])
	out := make([]float64, nLeaders)
	lo := 3 + (u-3)/2
	cnt := 0
	for t := lo; t < u; t++ {
		for l := 0; l < nLeaders; l++ {
			out[l] += at.Steps[t][l]
		}
		cnt++
	}
	if cnt == 0 {
		// Degenerate short series: use the last middle step available.
		for l := 0; l < nLeaders; l++ {
			out[l] = at.Steps[len(at.Steps)-4][l]
		}
		return out
	}
	for l := range out {
		out[l] /= float64(cnt)
	}
	return out
}

// MeasureAllreduceTasks benchmarks the MPI_Allreduce task pipeline under
// cfg (all 8 task types in one instrumented run, as the shared tasks let
// the tuner do).
func (e Env) MeasureAllreduceTasks(cfg han.Config, meter *Meter) AllreduceTasks {
	nodes := e.Spec.Nodes
	u := SBIBSeriesLen
	at := AllreduceTasks{Cfg: cfg}
	for t := 0; t < u+3; t++ {
		at.Steps = append(at.Steps, make([]float64, nodes))
	}
	t := e.runWorld(func(h *han.HAN, p *mpi.Proc) {
		steps, err := h.AllreduceSteps(p, u, mpi.OpSum, mpi.Float64, cfg)
		if err != nil {
			panic(err) // search-space configurations are valid by construction
		}
		if steps == nil {
			return
		}
		l := p.Node()
		for i := range steps {
			at.Steps[i][l] = float64(steps[i])
		}
	})
	meter.add(t)
	return at
}

// MeasureCollective measures a full collective operation end to end under
// cfg: IMB methodology, `iters` timed iterations after one warm-up, cost =
// mean over iterations of the max duration across ranks.
func (e Env) MeasureCollective(kind coll.Kind, m int, cfg han.Config, iters int, meter *Meter) float64 {
	if iters < 1 {
		iters = 1
	}
	maxPerIter := make([]float64, iters+1)
	t := e.runWorld(func(h *han.HAN, p *mpi.Proc) {
		c := h.W.World()
		for it := 0; it <= iters; it++ {
			c.Barrier(p)
			t0 := p.Now()
			switch kind {
			case coll.Bcast:
				h.Bcast(p, mpi.Phantom(m), 0, cfg)
			case coll.Allreduce:
				h.Allreduce(p, mpi.Phantom(m), mpi.Phantom(m), mpi.OpSum, mpi.Float64, cfg)
			case coll.Reduce:
				h.Reduce(p, mpi.Phantom(m), mpi.Phantom(m), mpi.OpSum, mpi.Float64, 0, cfg)
			default:
				panic("autotune: unsupported collective kind " + kind.String())
			}
			if d := float64(p.Now() - t0); d > maxPerIter[it] {
				maxPerIter[it] = d
			}
		}
	})
	meter.add(t)
	sum := 0.0
	for _, d := range maxPerIter[1:] {
		sum += d
	}
	return sum / float64(iters)
}
