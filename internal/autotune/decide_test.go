package autotune

import (
	"math/rand"
	"testing"

	"github.com/hanrepro/han/internal/cluster"
	"github.com/hanrepro/han/internal/coll"
	"github.com/hanrepro/han/internal/han"
	"github.com/hanrepro/han/internal/mpi"
)

// fixtureTables builds a spread of tables that exercise the decision
// rule's corners: sorted and unsorted entry orders, duplicate bit-length
// classes, multiple kinds interleaved, degenerate M <= 0 entries, and a
// table produced by a real (tiny) search.
func fixtureTables(t *testing.T) map[string]*Table {
	t.Helper()
	cfgAt := func(i int) han.Config {
		return han.Config{FS: (i + 1) << 10, IMod: "libnbc", SMod: "sm", IBAlg: coll.AlgBinomial, IRAlg: coll.AlgBinomial}
	}
	entry := func(kind coll.Kind, m, i int) Entry {
		return Entry{In: Input{N: 4, P: 4, M: m, T: kind}, Cfg: cfgAt(i), EstCost: float64(i)}
	}

	tables := map[string]*Table{}

	sortedT := &Table{Machine: "fixture", Method: "task"}
	for i, m := range []int{4, 64, 1 << 10, 16 << 10, 256 << 10, 1 << 20, 4 << 20} {
		sortedT.Entries = append(sortedT.Entries, entry(coll.Bcast, m, i))
	}
	tables["sorted-bcast"] = sortedT

	// Interleaved kinds in load order (stable sort by M mixes kinds).
	mixed := &Table{Machine: "fixture", Method: "task"}
	i := 0
	for _, m := range []int{4, 4, 64, 1 << 10, 1 << 10, 64 << 10, 1 << 20} {
		mixed.Entries = append(mixed.Entries, entry(coll.Bcast, m, i))
		i++
		mixed.Entries = append(mixed.Entries, entry(coll.Allreduce, m, i))
		i++
	}
	tables["mixed-kinds"] = mixed

	// Unsorted entry order with same-class duplicates: ties must resolve
	// to the earliest slice index, whatever the order.
	unsorted := &Table{Machine: "fixture", Method: "exhaustive"}
	for j, m := range []int{1 << 20, 4, 1000, 1023, 64 << 10, 4, 512, 1 << 20} {
		unsorted.Entries = append(unsorted.Entries, entry(coll.Bcast, m, j))
	}
	tables["unsorted-dups"] = unsorted

	// Degenerate sizes: M = 0 entries have infinite distance to every
	// query and only win when nothing else can.
	degenerate := &Table{Machine: "fixture", Method: "task"}
	degenerate.Entries = append(degenerate.Entries,
		entry(coll.Bcast, 0, 0),
		entry(coll.Bcast, 1<<10, 1),
		entry(coll.Allreduce, 0, 2),
	)
	tables["degenerate"] = degenerate

	empty := &Table{Machine: "fixture", Method: "task"}
	tables["empty"] = empty

	// A real search output on the mini machine, both tuned kinds.
	env := NewEnv(cluster.Mini(2, 2), mpi.OpenMPI())
	space := Space{
		Msgs:  []int{1 << 10, 64 << 10},
		FS:    []int{32 << 10},
		IMods: []string{"libnbc"},
		SMods: []string{"sm"},
		IBS:   []int{32 << 10},
	}
	res := RunSearch(env, space, []coll.Kind{coll.Bcast, coll.Allreduce}, Combined, SearchOpts{Workers: 1})
	tables["searched"] = res.Table

	return tables
}

// TestDecideMatchesScan is the differential gate for the binary-search
// decision index: across every fixture table, every kind, and a dense +
// randomized query-size axis, Decide must return exactly what the
// reference linear scan returns.
func TestDecideMatchesScan(t *testing.T) {
	queries := []int{-1, 0, 1, 2, 3, 4, 5, 63, 64, 65, 511, 512, 1000, 1023, 1024, 1025}
	for m := 1; m <= 8<<20; m <<= 1 {
		queries = append(queries, m-1, m, m+1)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		queries = append(queries, rng.Intn(16<<20))
	}

	kinds := []coll.Kind{coll.Bcast, coll.Allreduce, coll.Reduce, coll.Gather}
	for name, table := range fixtureTables(t) {
		for _, kind := range kinds {
			for _, m := range queries {
				got := table.Decide(kind, m)
				want := table.decideScan(kind, m)
				if got != want {
					t.Fatalf("table %q: Decide(%v, %d) = %+v, scan says %+v", name, kind, m, got, want)
				}
			}
		}
	}
}

// TestDecideIndexRebuild pins the lazy-rebuild contract: appending entries
// after a Decide invalidates the index, and the next Decide sees them.
func TestDecideIndexRebuild(t *testing.T) {
	table := &Table{Machine: "fixture", Method: "task"}
	table.Entries = append(table.Entries, Entry{
		In:  Input{N: 2, P: 2, M: 1 << 10, T: coll.Bcast},
		Cfg: han.Config{FS: 1 << 10, IMod: "libnbc", SMod: "sm"},
	})
	if got := table.Decide(coll.Bcast, 1<<20); got.FS != 1<<10 {
		t.Fatalf("pre-append decision FS = %d, want %d", got.FS, 1<<10)
	}
	table.Entries = append(table.Entries, Entry{
		In:  Input{N: 2, P: 2, M: 1 << 20, T: coll.Bcast},
		Cfg: han.Config{FS: 512 << 10, IMod: "adapt", SMod: "solo"},
	})
	if got := table.Decide(coll.Bcast, 1<<20); got.FS != 512<<10 {
		t.Fatalf("post-append decision FS = %d, want %d (index did not rebuild)", got.FS, 512<<10)
	}
	if got, want := table.Decide(coll.Bcast, 1<<20), table.decideScan(coll.Bcast, 1<<20); got != want {
		t.Fatalf("post-append Decide = %+v, scan says %+v", got, want)
	}
}

// TestDecideZeroAlloc pins the hot-path allocation contract the serving
// layer relies on: once the index is built, Decide allocates nothing.
func TestDecideZeroAlloc(t *testing.T) {
	table := decideBenchTable()
	table.BuildIndex()
	allocs := testing.AllocsPerRun(1000, func() {
		_ = table.Decide(coll.Bcast, 300<<10)
		_ = table.Decide(coll.Allreduce, 5)
	})
	if allocs != 0 {
		t.Fatalf("Decide allocated %.1f allocs/op on the hot path, want 0", allocs)
	}
}

func decideBenchTable() *Table {
	table := &Table{Machine: "bench", Method: "task"}
	i := 0
	for _, kind := range []coll.Kind{coll.Bcast, coll.Allreduce} {
		for m := 4; m <= 4<<20; m <<= 2 {
			table.Entries = append(table.Entries, Entry{
				In:      Input{N: 8, P: 8, M: m, T: kind},
				Cfg:     han.Config{FS: m, IMod: "libnbc", SMod: "sm", IBAlg: coll.AlgBinomial, IRAlg: coll.AlgBinomial},
				EstCost: float64(i),
			})
			i++
		}
	}
	return table
}

// BenchmarkDecide measures the indexed lookup the serving hot path calls;
// run with -benchmem — the allocation column must stay at 0.
func BenchmarkDecide(b *testing.B) {
	table := decideBenchTable()
	table.BuildIndex()
	sizes := []int{4, 777, 64 << 10, 300 << 10, 1 << 20, 7 << 20}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = table.Decide(coll.Bcast, sizes[i%len(sizes)])
	}
}

// BenchmarkDecideScan is the pre-index reference scan, kept for the
// speedup comparison in BENCH_serve.json.
func BenchmarkDecideScan(b *testing.B) {
	table := decideBenchTable()
	sizes := []int{4, 777, 64 << 10, 300 << 10, 1 << 20, 7 << 20}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = table.decideScan(coll.Bcast, sizes[i%len(sizes)])
	}
}
