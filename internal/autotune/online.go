package autotune

import (
	"fmt"

	"github.com/hanrepro/han/internal/coll"
	"github.com/hanrepro/han/internal/han"
	"github.com/hanrepro/han/internal/mpi"
)

// OnlineTuner implements the online-tuning approach of STAR-MPI (Faraj et
// al., ICS'06) that the paper's related-work section contrasts HAN's
// offline tuning against: instead of benchmarking ahead of time, it times
// the application's own collective calls, cycling through the candidate
// configurations for the first calls of each (kind, size-class) pair and
// locking in the fastest one afterwards.
//
// Its two known downsides — an unpredictable convergence period during
// which the application runs mispicked configurations, and the bookkeeping
// overhead of timing every call — are reproduced faithfully, so the
// offline-vs-online comparison (hanexp -ablate online) comes out the way
// the paper argues.
//
// All ranks of a world share one tuner. Because every rank must use the
// same configuration for the same collective call, the trial schedule is a
// pure function of the per-rank call index, and a one-time barrier at the
// convergence boundary publishes rank 0's measured winner to everyone.
type OnlineTuner struct {
	h *han.HAN
	// TrialsPerConfig is how many timed calls each candidate receives.
	TrialsPerConfig int
	// Overhead is the per-call bookkeeping cost in CPU-seconds charged to
	// the calling rank (timing, decision-matrix maintenance).
	Overhead float64

	expand func(kind coll.Kind, m int) []Candidate
	states map[onlineKey]*onlineState
}

type onlineKey struct {
	kind coll.Kind
	mLog int // size class: floor(log2(m))
}

type onlineState struct {
	cands []Candidate
	calls map[int]int // per world-rank call index
	sums  []float64   // per candidate: summed durations (rank 0's clock)
	best  han.Config
	done  bool // best computed and published
}

// NewOnlineTuner wraps a HAN instance with online tuning over the given
// search space.
func NewOnlineTuner(h *han.HAN, space Space) *OnlineTuner {
	nodes := h.W.Mach.Spec.Nodes
	return &OnlineTuner{
		h:               h,
		TrialsPerConfig: 2,
		Overhead:        0.5e-6,
		expand: func(kind coll.Kind, m int) []Candidate {
			return space.Expand(kind, m, true, nodes)
		},
		states: make(map[onlineKey]*onlineState),
	}
}

func (t *OnlineTuner) state(kind coll.Kind, m int) *onlineState {
	k := onlineKey{kind, log2(m)}
	st := t.states[k]
	if st == nil {
		cands := t.expand(kind, m)
		if len(cands) == 0 {
			cands = []Candidate{{Cfg: han.DefaultDecision(kind, m)}}
		}
		st = &onlineState{cands: cands, calls: make(map[int]int), sums: make([]float64, len(cands))}
		t.states[k] = st
	}
	return st
}

func log2(m int) int {
	l := 0
	for m > 1 {
		m >>= 1
		l++
	}
	return l
}

// trialCalls is the length of the trial schedule for a state.
func (t *OnlineTuner) trialCalls(st *onlineState) int {
	return len(st.cands) * t.TrialsPerConfig
}

// Converged reports whether the size class of (kind, m) has locked in a
// configuration.
func (t *OnlineTuner) Converged(kind coll.Kind, m int) bool {
	st := t.states[onlineKey{kind, log2(m)}]
	return st != nil && st.done
}

// Chosen returns the locked-in configuration for a size class (zero Config
// before convergence).
func (t *OnlineTuner) Chosen(kind coll.Kind, m int) han.Config {
	st := t.states[onlineKey{kind, log2(m)}]
	if st != nil && st.done {
		return st.best
	}
	return han.Config{}
}

// begin resolves the configuration for this rank's next call of the state
// and reports the call index. The trial schedule is deterministic in the
// call index, so all ranks agree without communicating; the first
// post-trial call performs a barrier that orders rank 0's final measurement
// before anyone reads the winner.
func (t *OnlineTuner) begin(p *mpi.Proc, st *onlineState) (han.Config, int) {
	idx := st.calls[p.Rank]
	st.calls[p.Rank] = idx + 1
	trial := t.trialCalls(st)
	if idx < trial {
		return st.cands[idx/t.TrialsPerConfig].Cfg, idx
	}
	if idx == trial {
		// Convergence boundary: rank 0 has recorded the last trial before
		// it enters this barrier, so everyone leaves with the winner
		// published.
		t.h.W.World().Barrier(p)
		if !st.done {
			best := 0
			for c := range st.sums {
				if st.sums[c] < st.sums[best] {
					best = c
				}
			}
			st.best = st.cands[best].Cfg
			st.done = true
		}
	}
	return st.best, idx
}

// record folds one measured duration into the state (rank 0's measurements
// drive the decision, as a single timing stream keeps the matrix
// consistent).
func (t *OnlineTuner) record(p *mpi.Proc, st *onlineState, idx int, d float64) {
	if p.Rank != 0 || idx >= t.trialCalls(st) {
		return
	}
	st.sums[idx/t.TrialsPerConfig] += d
}

// Bcast runs a HAN broadcast under online tuning.
func (t *OnlineTuner) Bcast(p *mpi.Proc, buf mpi.Buf, root int) {
	st := t.state(coll.Bcast, buf.N)
	cfg, idx := t.begin(p, st)
	cpuWaitTuner(p, t.Overhead)
	t0 := p.Now()
	t.h.Bcast(p, buf, root, cfg)
	t.record(p, st, idx, float64(p.Now()-t0))
}

// Allreduce runs a HAN allreduce under online tuning.
func (t *OnlineTuner) Allreduce(p *mpi.Proc, sbuf, rbuf mpi.Buf, op mpi.Op, dt mpi.Datatype) {
	st := t.state(coll.Allreduce, sbuf.N)
	cfg, idx := t.begin(p, st)
	cpuWaitTuner(p, t.Overhead)
	t0 := p.Now()
	t.h.Allreduce(p, sbuf, rbuf, op, dt, cfg)
	t.record(p, st, idx, float64(p.Now()-t0))
}

func cpuWaitTuner(p *mpi.Proc, seconds float64) {
	if seconds <= 0 {
		return
	}
	f := p.W.Mach.CPUWork(p.Rank, seconds)
	p.Sim.Wait(f.Done())
}

// String summarises tracked state for debugging.
func (t *OnlineTuner) String() string {
	return fmt.Sprintf("online tuner: %d size classes tracked", len(t.states))
}
