# Developer entry points. CI runs the `ci` target's steps (see
# .github/workflows/ci.yml); keep the two in sync.

GO ?= go

.PHONY: build test race vet lint ci bench bench-alloc bench-search bench-parallel bench-serve chaos chaos-soak fuzz docs

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The pre-push gate: go vet, then the repo's own invariant analyzers
# (internal/lint) over all three trees — standalone in ONE invocation so
# interprocedural facts (detflow summaries, metriclabel registrations)
# span the whole program and the baseline can ratchet, then as a vettool
# so _test.go files are covered. The standalone run also emits the SARIF
# log CI uploads. staticcheck is optional equipment (the build container
# is offline) but never advisory: its presence/absence is logged, and
# when installed its findings fail the target. hanlint must run from the
# repo root: its loader resolves module-local imports via the cwd.
lint: vet
	@mkdir -p bin
	$(GO) build -o bin/hanlint ./cmd/hanlint
	./bin/hanlint -sarif bin/hanlint.sarif ./internal/... ./cmd/... ./examples/...
	$(GO) vet -vettool=bin/hanlint ./internal/... ./cmd/... ./examples/...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck: present at $$(command -v staticcheck), enforcing"; \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (CI installs and enforces it)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: build lint race
	$(GO) test -race -count=1 -run 'Differential|Parity|Deterministic' ./internal/flow/ ./internal/mpi/ .
	$(GO) test -race -count=1 -run 'ScaleSmoke' .

# Fault matrix: every builtin plan across three seeds (what the CI
# fault-matrix job runs, one cell per runner), plus the crash matrix over
# the crash plans.
chaos:
	@for seed in 1 2 3; do for plan in drops flaps stragglers; do \
		echo "== seed $$seed plan $$plan"; \
		HAN_FAULT_SEED=$$seed HAN_FAULT_PLAN=$$plan \
		$(GO) test -count=1 -run 'FaultMatrix|Chaos' ./internal/han/ ./internal/coll/ || exit 1; \
	done; done
	@for seed in 1 2 3; do for plan in crash-rank crash-node crash-coll; do \
		echo "== seed $$seed crash plan $$plan"; \
		HAN_FAULT_SEED=$$seed HAN_CRASH_PLAN=$$plan \
		$(GO) test -count=1 -run 'CrashMatrix' ./internal/han/ || exit 1; \
	done; done

# Chaos soak (the CI chaos-soak job): the fault and crash matrices under
# the race detector across five seeds — the long-haul robustness gate.
chaos-soak:
	@for seed in 1 2 3 4 5; do for plan in drops flaps stragglers combined; do \
		echo "== soak seed $$seed plan $$plan"; \
		HAN_FAULT_SEED=$$seed HAN_FAULT_PLAN=$$plan \
		$(GO) test -race -count=1 -run 'FaultMatrix|Chaos' ./internal/han/ || exit 1; \
	done; done
	@for seed in 1 2 3 4 5; do for plan in crash-rank crash-node crash-coll; do \
		echo "== soak seed $$seed crash plan $$plan"; \
		HAN_FAULT_SEED=$$seed HAN_CRASH_PLAN=$$plan \
		$(GO) test -race -count=1 -run 'CrashMatrix|Crash|Shrink|Abort' ./internal/han/ ./internal/mpi/ || exit 1; \
	done; done

# Native fuzzing smoke: a few seconds per fault-plan fuzz target, enough
# to catch validator/occurrence regressions without a dedicated fleet.
fuzz:
	$(GO) test -run xxx -fuzz FuzzPlanValidate -fuzztime 5s ./internal/fault/
	$(GO) test -run xxx -fuzz FuzzOccurrences -fuzztime 5s ./internal/fault/

# Documentation gate (the CI `docs` job): observability goldens and the
# docs-coverage contract, the checked-in critical-path report, and the
# markdown link checker. Regenerate goldens with
# `go test ./internal/bench -run Goldens -update`.
docs:
	$(GO) test -count=1 -run 'ObserveGoldens|CritPathOverlap|ObservabilityDocCoverage' ./internal/bench/
	@mkdir -p bin
	$(GO) run ./cmd/hantrace critpath -op bcast -size 4194304 -machine mini -nodes 4 -ppn 4 -fs 524288 -seed 1 > bin/fig2.txt
	tail -n +2 results/critpath-fig2.txt | diff - bin/fig2.txt
	$(GO) test -count=1 ./internal/docs/

# Allocator benchmarks, micro to macro: the flow-level rebalance
# micro-benchmarks (incremental vs reference), the paper-scale 4096-rank
# wall-clock point on both allocation paths, and the 98304-rank phantom
# scale tier with its memory accounting. Compare against
# BENCH_allocator.json; regenerate that baseline from this output.
bench-alloc:
	$(GO) test -run xxx -bench Rebalance -benchmem ./internal/flow/
	$(GO) test -run xxx -bench 'Fig10Scale4096|Scale98k' -benchtime 1x -benchmem .

# Parallel tuning-sweep benchmark: serial vs parallel RunSearch wall-clock
# (tables are byte-identical across the worker axis). Compare against
# BENCH_search.json; regenerate that baseline from this output on a
# multi-core machine.
bench-search:
	$(GO) test -run xxx -bench RunSearch -benchtime 2x -benchmem ./internal/autotune/

# Parallel-engine benchmark: the partitioned 4096-rank broadcast on the
# windowed engine (workers 1/2/8) vs the shared-engine serial oracle.
# sim-us/op must be identical in every cell; wall-clock is the variable.
# Compare against BENCH_parallel_sim.json; regenerate that baseline from
# this output on a multi-core machine.
bench-parallel:
	$(GO) test -run xxx -bench 'ParallelSim4096' -benchtime 3x -benchmem .

# Tuning-decision service benchmark (docs/SERVING.md): the zero-alloc
# decision microbenchmarks, then the closed-loop loopback QPS/latency
# harness. Compare against BENCH_serve.json; regenerate that baseline
# from this output (the harness itself emits the JSON via -serve-out).
bench-serve:
	$(GO) test -run xxx -bench 'Decide|ClientLoopback|ClientWire' -benchmem ./internal/autotune/ ./internal/serve/
	$(GO) run ./cmd/hanbench -serve -clients 8 -duration 2s -machine mini

# Trimmed paper-scale wall-clock benchmark (4096 ranks); compare against
# BENCH_allocator.json.
bench:
	$(GO) test -run xxx -bench 'Fig10Scale4096' -benchtime 1x -benchmem .
