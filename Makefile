# Developer entry points. CI runs the `ci` target's steps (see
# .github/workflows/ci.yml); keep the two in sync.

GO ?= go

.PHONY: build test race vet ci bench bench-alloc

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: build vet race
	$(GO) test -race -count=1 -run 'Differential|Parity|Deterministic' ./internal/flow/ .

# Allocator micro-benchmarks: incremental vs reference, side by side.
bench-alloc:
	$(GO) test -run xxx -bench Rebalance -benchmem ./internal/flow/

# Trimmed paper-scale wall-clock benchmark (4096 ranks); compare against
# BENCH_allocator.json.
bench:
	$(GO) test -run xxx -bench 'Fig10Scale4096' -benchtime 1x -benchmem .
