// ASP example: solve a real all-pairs-shortest-path instance with the
// distributed Floyd–Warshall of the paper's Table III workload, verify it
// against a sequential solve, then time the communication skeleton at a
// larger scale to compare HAN with default Open MPI.
//
//	go run ./examples/asp
package main

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hanrepro/han/internal/apps"
	"github.com/hanrepro/han/internal/bench"
	"github.com/hanrepro/han/internal/cluster"
	"github.com/hanrepro/han/internal/rivals"
)

func main() {
	// Part 1: correctness on a real 16-city instance.
	const n = 16
	rng := rand.New(rand.NewSource(42))
	weights := make([][]float64, n)
	for i := range weights {
		weights[i] = make([]float64, n)
		for j := range weights[i] {
			switch {
			case i == j:
				weights[i][j] = 0
			case rng.Float64() < 0.4:
				weights[i][j] = math.Inf(1) // no direct road
			default:
				weights[i][j] = 1 + rng.Float64()*9
			}
		}
	}
	want := make([][]float64, n)
	for i := range want {
		want[i] = append([]float64(nil), weights[i]...)
	}
	apps.FloydWarshall(want)

	spec := cluster.Mini(2, 4)
	got := apps.DistributedASP(spec, bench.HANSystem(nil), weights)
	maxErr := 0.0
	for i := range got {
		for j := range got[i] {
			if d := math.Abs(got[i][j] - want[i][j]); d > maxErr {
				maxErr = d
			}
		}
	}
	fmt.Printf("distributed ASP over %d ranks: max deviation from sequential solve = %g\n",
		spec.Ranks(), maxErr)

	// Part 2: the Table III timing shape at reduced scale.
	big := cluster.Stampede2()
	big.Nodes, big.PPN = 4, 24
	prm := apps.DefaultASPParams(big.Ranks())
	prm.Iters = 16
	fmt.Printf("\nASP skeleton on %d processes (%d iterations of 4MB row broadcasts):\n",
		big.Ranks(), prm.Iters)
	fmt.Printf("%-18s%12s%12s%10s\n", "system", "total (s)", "comm (s)", "comm %")
	for _, sys := range []bench.System{
		bench.HANSystem(nil),
		bench.RivalSystem(rivals.OpenMPIDefault),
	} {
		r := apps.RunASP(big, sys, prm)
		fmt.Printf("%-18s%12.3f%12.3f%9.1f%%\n", r.System, r.Total, r.Comm, 100*r.CommRatio)
	}
}
