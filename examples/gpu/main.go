// GPU example: the paper's future-work scenario — HAN combining its
// inter-node submodules with an intra-node GPU collective submodule. Runs a
// verified GPU-aware broadcast and allreduce on a simulated multi-GPU
// cluster, then shows why the GPU level belongs *inside* the task pipeline.
//
//	go run ./examples/gpu
package main

import (
	"fmt"
	"log"

	"github.com/hanrepro/han/internal/cluster"
	"github.com/hanrepro/han/internal/coll"
	"github.com/hanrepro/han/internal/han"
	"github.com/hanrepro/han/internal/mpi"
	"github.com/hanrepro/han/internal/sim"
)

func main() {
	spec := cluster.ShaheenII()
	spec.Nodes, spec.PPN = 4, 8
	spec.GPUsPerNode = 4
	spec.GPUMemBandwidth = 700e9
	spec.NVLinkBandwidth = 50e9
	spec.PCIeBandwidth = 12e9

	// 1. Verified GPU-aware allreduce with real data.
	eng := sim.New()
	w := mpi.NewWorld(cluster.NewMachine(eng, spec), mpi.OpenMPI())
	h := han.New(w)
	ranks := spec.Ranks()
	w.Start(func(p *mpi.Proc) {
		vals := []float64{float64(p.Rank), 1}
		sbuf := mpi.Bytes(mpi.EncodeFloat64s(vals))
		rbuf := mpi.Bytes(make([]byte, sbuf.N))
		h.AllreduceGPU(p, sbuf, rbuf, mpi.OpSum, mpi.Float64, han.Config{FS: 8})
		got := mpi.DecodeFloat64s(rbuf.B)
		if got[0] != float64(ranks*(ranks-1))/2 || got[1] != float64(ranks) {
			log.Fatalf("rank %d: wrong allreduce result %v", p.Rank, got)
		}
	})
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GPU allreduce verified on %d ranks x %d GPUs/node\n\n", ranks, spec.GPUsPerNode)

	// 2. Pipelined vs naive staging for gradient-sized broadcasts.
	fmt.Printf("%-8s%18s%20s%8s\n", "size", "HAN BcastGPU µs", "naive staging µs", "gain")
	for _, m := range []int{1 << 20, 16 << 20, 64 << 20} {
		cfg := han.DefaultDecision(coll.Bcast, m)
		piped := timeRun(spec, func(h *han.HAN, p *mpi.Proc) {
			h.BcastGPU(p, mpi.Phantom(m), 0, cfg)
		})
		naive := timeRun(spec, func(h *han.HAN, p *mpi.Proc) {
			cuda := h.Mods.CUDA
			if p.Rank == 0 {
				cuda.D2H(p, m)
			}
			h.Bcast(p, mpi.Phantom(m), 0, cfg)
			if h.W.Mach.IsNodeLeader(p.Rank) {
				cuda.H2D(p, m)
			}
			p.Wait(cuda.Ibcast(p, h.W.NodeComm(p.Node()), mpi.Phantom(m), 0, coll.Params{}))
		})
		fmt.Printf("%-8s%18.1f%20.1f%7.2fx\n", han.SizeString(m), piped*1e6, naive*1e6, naive/piped)
	}
	fmt.Println("\nPipelining the PCIe stagings against the inter-node transfers (HAN's")
	fmt.Println("task-based design) hides most of the host round trip.")
}

func timeRun(spec cluster.Spec, fn func(h *han.HAN, p *mpi.Proc)) float64 {
	eng := sim.New()
	w := mpi.NewWorld(cluster.NewMachine(eng, spec), mpi.OpenMPI())
	h := han.New(w)
	var end sim.Time
	w.Start(func(p *mpi.Proc) {
		fn(h, p)
		if p.Now() > end {
			end = p.Now()
		}
	})
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
	return float64(end)
}
