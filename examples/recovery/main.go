// Recovery: crash a whole node mid-run (its group leader included), let
// the failure detector declare the deaths, and complete a broadcast and an
// allreduce on the survivors under the Shrink policy — then rerun the same
// (seed, plan) and show the replay is byte-identical. The Abort policy is
// demonstrated last: the same crash under OnFailure: Abort fails fast with
// a RankFailedError naming the dead.
//
//	go run ./examples/recovery
//
// The output is the checked-in artifact results/recovery.txt; regenerate
// with `go run ./examples/recovery > results/recovery.txt`.
package main

import (
	"errors"
	"fmt"
	"log"

	"github.com/hanrepro/han/internal/cluster"
	"github.com/hanrepro/han/internal/fault"
	"github.com/hanrepro/han/internal/han"
	"github.com/hanrepro/han/internal/mpi"
	"github.com/hanrepro/han/internal/sim"
)

const (
	elems  = 1 << 10
	seed   = 1
	settle = 1e-3 // past crash (50µs) + suspicion (300µs), quantized to the sweep
)

// plan kills node 1 — ranks 4..7 of Mini(3,4), its group leader included.
func plan() fault.Plan {
	return fault.Plan{Crashes: []fault.CrashSpec{{Rank: 4, Node: true, At: 50e-6}}}
}

// run executes the recovery scenario once and returns the world, the HAN
// instance, and the finish time.
func run(policy han.FailPolicy, report bool) (*mpi.World, sim.Time) {
	spec := cluster.Mini(3, 4)
	eng := sim.New()
	w := mpi.NewWorld(cluster.NewMachine(eng, spec), mpi.OpenMPI())
	w.Seed(seed)
	w.AttachFaults(plan())
	h := han.New(w)
	h.OnFailure = policy

	w.Start(func(p *mpi.Proc) {
		p.Sim.Sleep(settle) // survivors wait out detection; victims never wake

		// Broadcast from rank 0 (a surviving leader).
		payload := make([]float64, elems)
		if p.Rank == 0 {
			for i := range payload {
				payload[i] = float64(i) * 0.5
			}
		}
		buf := mpi.Bytes(mpi.EncodeFloat64s(payload))
		err := h.Bcast(p, buf, 0, han.Config{})
		var rf *han.RankFailedError
		if errors.As(err, &rf) {
			if report && p.Rank == 0 {
				fmt.Printf("abort policy: %v\n", rf)
			}
			return
		}
		if err != nil {
			var fb *han.FallbackError
			if !errors.As(err, &fb) {
				log.Fatalf("rank %d: Bcast: %v", p.Rank, err)
			}
			if report && p.Rank == 0 {
				fmt.Printf("shrink policy: %v\n", fb)
			}
		}
		if got := mpi.DecodeFloat64s(buf.B); got[100] != 50 {
			log.Fatalf("rank %d: broadcast corrupted after recovery", p.Rank)
		}

		// Allreduce over the survivors: sum of surviving ranks at i=0.
		contrib := make([]float64, elems)
		for i := range contrib {
			contrib[i] = float64(p.Rank + i)
		}
		sbuf := mpi.Bytes(mpi.EncodeFloat64s(contrib))
		rbuf := mpi.Bytes(make([]byte, sbuf.N))
		if err := h.Allreduce(p, sbuf, rbuf, mpi.OpSum, mpi.Float64, han.Config{}); err != nil {
			if !errors.As(err, new(*han.FallbackError)) {
				log.Fatalf("rank %d: Allreduce: %v", p.Rank, err)
			}
		}
		sum := mpi.DecodeFloat64s(rbuf.B)
		// Survivors are 0..3 and 8..11: sum of ranks = 44 over 8 contributors.
		if sum[0] != 44 || sum[1] != 44+8 {
			log.Fatalf("rank %d: allreduce wrong after recovery: %v %v", p.Rank, sum[0], sum[1])
		}
		if report && p.Rank == 0 {
			fmt.Printf("allreduce on survivors: sum[0] = %v (sum of surviving ranks), sum[1] = %v\n",
				sum[0], sum[1])
		}
	})
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
	return w, eng.Now()
}

func main() {
	fmt.Println("# Crash-recovery demo: Mini(3,4), node 1 (ranks 4-7) crashes at t=50µs.")

	w, t1 := run(han.Shrink, true)
	fmt.Printf("dead ranks: %v (epoch %d)\n", w.DeadRanks(), w.DeathEpoch())
	for _, d := range w.DeadReports() {
		fmt.Printf("  %s\n", d)
	}
	fmt.Printf("survivor communicator: %d of %d ranks\n", w.Shrink().Size(), w.Size())
	fmt.Printf("finish time: %.1f µs (virtual)\n", float64(t1)*1e6)

	_, t2 := run(han.Shrink, false)
	if t1 == t2 {
		fmt.Printf("replay: identical finish time across reruns (deterministic recovery)\n")
	} else {
		log.Fatalf("replay diverged: %v vs %v", t1, t2)
	}

	run(han.Abort, true)
}
