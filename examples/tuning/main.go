// Tuning example: run the task-based autotuner on a small machine, inspect
// the lookup table it produces, and measure how much the tuned decisions
// improve over the static default — the end-to-end workflow of section
// III-C.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/hanrepro/han/internal/autotune"
	"github.com/hanrepro/han/internal/cluster"
	"github.com/hanrepro/han/internal/coll"
	"github.com/hanrepro/han/internal/han"
	"github.com/hanrepro/han/internal/mpi"
)

func main() {
	spec := cluster.Tuning64()
	spec.Nodes, spec.PPN = 8, 8
	env := autotune.NewEnv(spec, mpi.OpenMPI())
	space := autotune.Space{
		Msgs:  []int{4 << 10, 256 << 10, 4 << 20},
		FS:    []int{64 << 10, 256 << 10, 1 << 20},
		IMods: han.InterNames(),
		SMods: han.IntraNames(),
		IBS:   []int{64 << 10},
	}

	// 1. Tune with the combined (task-based + heuristics) method.
	res := autotune.RunSearch(env, space, []coll.Kind{coll.Bcast}, autotune.Combined, autotune.SearchOpts{})
	table := res.Table
	fmt.Printf("tuned %d inputs with %d benchmark runs (%.2f s of virtual machine time)\n\n",
		len(table.Entries), table.Measurements, table.TuningCost)
	for _, e := range table.Entries {
		fmt.Printf("  %-26s -> %s\n", e.In, e.Cfg)
	}

	// 2. Persist and reload the lookup table, as an MPI installation would.
	path := filepath.Join(os.TempDir(), "han-tuning-example.json")
	if err := table.Save(path); err != nil {
		log.Fatal(err)
	}
	loaded, err := autotune.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlookup table round-tripped through %s\n", path)

	// 3. Compare tuned vs untuned decisions end to end.
	meter := &autotune.Meter{}
	fmt.Printf("\n%-10s%14s%14s%10s\n", "size", "default µs", "tuned µs", "gain")
	for _, m := range []int{4 << 10, 256 << 10, 4 << 20, 16 << 20} {
		def := env.MeasureCollective(coll.Bcast, m, han.DefaultDecision(coll.Bcast, m), 2, meter)
		tuned := env.MeasureCollective(coll.Bcast, m, loaded.Decide(coll.Bcast, m), 2, meter)
		fmt.Printf("%-10s%14.1f%14.1f%9.2fx\n", han.SizeString(m), def*1e6, tuned*1e6, def/tuned)
	}
}
