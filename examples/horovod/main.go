// Horovod example: scale a synchronous data-parallel training loop
// (AlexNet-sized gradients, fused allreduce buckets) across node counts and
// compare HAN with default Open MPI and Intel MPI — the Fig 15 experiment.
//
//	go run ./examples/horovod
package main

import (
	"fmt"

	"github.com/hanrepro/han/internal/apps"
	"github.com/hanrepro/han/internal/bench"
	"github.com/hanrepro/han/internal/cluster"
	"github.com/hanrepro/han/internal/rivals"
)

func main() {
	prm := apps.DefaultHorovodParams()
	fmt.Printf("training step: %.0f ms compute + %d MB of gradients in %d MB fusion buckets\n\n",
		prm.StepCompute*1e3, prm.ModelBytes>>20, prm.FusionBytes>>20)

	systems := []bench.System{
		bench.HANSystem(nil),
		bench.RivalSystem(rivals.OpenMPIDefault),
		bench.RivalSystem(rivals.IntelMPI),
	}
	fmt.Printf("%-8s", "procs")
	for _, sys := range systems {
		fmt.Printf("%20s", sys.Name+" img/s")
	}
	fmt.Println()
	for _, nodes := range []int{1, 2, 4, 8} {
		spec := cluster.Stampede2()
		spec.Nodes = nodes
		fmt.Printf("%-8d", spec.Ranks())
		for _, sys := range systems {
			r := apps.RunHorovod(spec, sys, prm)
			fmt.Printf("%20.0f", r.ImagesSec)
		}
		fmt.Println()
	}
	fmt.Println("\nThe gap between HAN and the others grows with scale, as in Fig 15.")
}
