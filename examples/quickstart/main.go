// Quickstart: build a simulated cluster, run a HAN broadcast and allreduce
// with real payloads, and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/hanrepro/han/internal/cluster"
	"github.com/hanrepro/han/internal/han"
	"github.com/hanrepro/han/internal/mpi"
	"github.com/hanrepro/han/internal/sim"
)

func main() {
	// A 4-node machine with 8 processes per node, Shaheen-like hardware.
	spec := cluster.ShaheenII()
	spec.Nodes, spec.PPN = 4, 8

	eng := sim.New()
	world := mpi.NewWorld(cluster.NewMachine(eng, spec), mpi.OpenMPI())
	h := han.New(world) // HAN with its default decision function

	const elems = 1 << 10
	world.Start(func(p *mpi.Proc) {
		// 1. Broadcast 8 KB of real data from rank 0.
		payload := make([]float64, elems)
		if p.Rank == 0 {
			for i := range payload {
				payload[i] = float64(i) * 0.5
			}
		}
		buf := mpi.Bytes(mpi.EncodeFloat64s(payload))
		h.Bcast(p, buf, 0, han.Config{})
		payload = mpi.DecodeFloat64s(buf.B)
		if payload[100] != 50 {
			log.Fatalf("rank %d: broadcast corrupted", p.Rank)
		}

		// 2. Allreduce: every rank contributes rank+i, everyone gets the sum.
		contrib := make([]float64, elems)
		for i := range contrib {
			contrib[i] = float64(p.Rank + i)
		}
		sbuf := mpi.Bytes(mpi.EncodeFloat64s(contrib))
		rbuf := mpi.Bytes(make([]byte, sbuf.N))
		t0 := p.Now()
		h.Allreduce(p, sbuf, rbuf, mpi.OpSum, mpi.Float64, han.Config{})
		sum := mpi.DecodeFloat64s(rbuf.B)

		if p.Rank == 0 {
			n := spec.Ranks()
			want := float64(n*(n-1)) / 2 // sum of ranks at i=0
			fmt.Printf("allreduce of %d float64s over %d ranks took %.1f µs (virtual)\n",
				elems, n, float64(p.Now()-t0)*1e6)
			fmt.Printf("sum[0] = %v (want %v), sum[1] = %v (want %v)\n",
				sum[0], want, sum[1], want+float64(n))
		}
	})
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation finished at t = %.3f ms of virtual time\n", float64(eng.Now())*1e3)
}
