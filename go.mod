module github.com/hanrepro/han

go 1.22
