// Command netpipe measures point-to-point ping-pong bandwidth between two
// nodes of a simulated machine for one or more MPI personalities,
// reproducing the methodology behind Fig 11 of the HAN paper.
//
// Usage:
//
//	netpipe -machine shaheen -libs OpenMPI-default,CrayMPI
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/hanrepro/han/internal/bench"
	"github.com/hanrepro/han/internal/cluster"
	"github.com/hanrepro/han/internal/han"
	"github.com/hanrepro/han/internal/mpi"
	"github.com/hanrepro/han/internal/rivals"
)

func main() {
	machine := flag.String("machine", "shaheen", "machine preset: shaheen, stampede, mini")
	libsFlag := flag.String("libs", "OpenMPI-default,CrayMPI", "comma-separated personalities")
	flag.Parse()

	var spec cluster.Spec
	switch *machine {
	case "shaheen":
		spec = cluster.ShaheenII()
	case "stampede":
		spec = cluster.Stampede2()
	case "mini":
		spec = cluster.Mini(2, 2)
	default:
		fmt.Fprintf(os.Stderr, "netpipe: unknown machine %q\n", *machine)
		os.Exit(2)
	}
	spec.Nodes = 2 // ping-pong needs exactly two nodes' worth of hardware

	var names []string
	var perss []*mpi.Personality
	for _, name := range strings.Split(*libsFlag, ",") {
		name = strings.TrimSpace(name)
		var p *mpi.Personality
		switch name {
		case "OpenMPI-default", "OpenMPI", "HAN":
			p = mpi.OpenMPI()
		case "CrayMPI":
			p = rivals.CrayMPI.Personality()
		case "IntelMPI":
			p = rivals.IntelMPI.Personality()
		case "MVAPICH2":
			p = rivals.MVAPICH2.Personality()
		default:
			fmt.Fprintf(os.Stderr, "netpipe: unknown personality %q\n", name)
			os.Exit(2)
		}
		names = append(names, name)
		perss = append(perss, p)
	}

	var sizes []int
	for n := 64; n <= 128<<20; n *= 4 {
		sizes = append(sizes, n)
	}
	results := make([][]bench.BWPoint, len(perss))
	for i, p := range perss {
		results[i] = bench.Netpipe(spec, p, sizes)
	}
	fmt.Printf("# Netpipe on %s (one-way bandwidth, MB/s)\n", spec.Name)
	fmt.Printf("%-10s", "size")
	for _, n := range names {
		fmt.Printf("%18s", n)
	}
	fmt.Println()
	for i, s := range sizes {
		fmt.Printf("%-10s", han.SizeString(s))
		for j := range perss {
			fmt.Printf("%18.0f", results[j][i].MBps)
		}
		fmt.Println()
	}
}
