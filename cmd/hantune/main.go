// Command hantune is HAN's offline autotuner: it benchmarks HAN's tasks on
// a machine, evaluates the cost model over the configuration space, and
// writes the resulting lookup table (best configuration per Table I input)
// to a JSON file that hanbench and applications can load.
//
// Usage:
//
//	hantune -machine tuning64 -method task -o tuning.json
//	hantune -machine shaheen -nodes 16 -method task+heur -o shaheen.json
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hanrepro/han/internal/autotune"
	"github.com/hanrepro/han/internal/cluster"
	"github.com/hanrepro/han/internal/coll"
	"github.com/hanrepro/han/internal/mpi"
)

func main() {
	machine := flag.String("machine", "tuning64", "machine preset: shaheen, stampede, tuning64, mini")
	nodes := flag.Int("nodes", 0, "override node count")
	ppn := flag.Int("ppn", 0, "override processes per node")
	method := flag.String("method", "task", "tuning method: exhaustive, exhaustive+heur, task, task+heur")
	out := flag.String("o", "han-tuning.json", "output lookup table path")
	workers := flag.Int("workers", 0, "concurrent measurement workers (0 = GOMAXPROCS); the table is identical for any value")
	flag.Parse()

	var spec cluster.Spec
	switch *machine {
	case "shaheen":
		spec = cluster.ShaheenII()
	case "stampede":
		spec = cluster.Stampede2()
	case "tuning64":
		spec = cluster.Tuning64()
	case "mini":
		spec = cluster.Mini(4, 8)
	default:
		fmt.Fprintf(os.Stderr, "hantune: unknown machine %q\n", *machine)
		os.Exit(2)
	}
	if *nodes > 0 {
		spec.Nodes = *nodes
	}
	if *ppn > 0 {
		spec.PPN = *ppn
	}

	var m autotune.Method
	switch *method {
	case "exhaustive":
		m = autotune.Exhaustive
	case "exhaustive+heur":
		m = autotune.ExhaustiveHeuristics
	case "task":
		m = autotune.TaskBased
	case "task+heur":
		m = autotune.Combined
	default:
		fmt.Fprintf(os.Stderr, "hantune: unknown method %q\n", *method)
		os.Exit(2)
	}

	env := autotune.NewEnv(spec, mpi.OpenMPI())
	fmt.Printf("hantune: tuning %s (%d nodes x %d ppn) with the %s method...\n",
		spec.Name, spec.Nodes, spec.PPN, m)
	res := autotune.RunSearch(env, autotune.DefaultSpace(), []coll.Kind{coll.Bcast, coll.Allreduce}, m, autotune.SearchOpts{Workers: *workers})
	t := res.Table
	fmt.Printf("hantune: %d benchmark runs, %.2f s of (virtual) machine time\n",
		t.Measurements, t.TuningCost)
	for _, e := range t.Entries {
		fmt.Printf("  %-30s -> %s  (est %.1f µs)\n", e.In, e.Cfg, e.EstCost*1e6)
	}
	if err := t.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "hantune:", err)
		os.Exit(1)
	}
	fmt.Printf("hantune: lookup table written to %s\n", *out)
}
