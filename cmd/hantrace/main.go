// Command hantrace runs one HAN collective with every observability layer
// enabled and renders the observation in one of four forms (see
// docs/OBSERVABILITY.md for the contract behind each):
//
//	hantrace [flags]          Chrome trace-event JSON with per-resource
//	                          utilization counter tracks (chrome://tracing
//	                          or https://ui.perfetto.dev); the ib/sb overlap
//	                          of Fig 1 and the four-stage Allreduce pipeline
//	                          of Fig 5 appear as overlapping spans.
//	hantrace stats [flags]    Aggregate text report: event counts, task and
//	                          collective span totals, message latency,
//	                          flow totals, per-resource busy time and peak.
//	hantrace critpath [flags] The critical path of the run: the chain of
//	                          dependencies ending at the last rank to
//	                          finish, each slice attributed to the tasks
//	                          or network hop that carried it.
//	hantrace metrics [flags]  OpenMetrics text export of the runtime and
//	                          framework counters.
//
// All four are deterministic: the same flags produce byte-identical output
// on every run (the property the golden tests in internal/bench pin down).
//
// Usage:
//
//	hantrace -op bcast -size 4194304 -nodes 4 -ppn 8 -o bcast.trace.json
//	hantrace critpath -op bcast -size 1048576 -nodes 2 -ppn 2 -machine mini -fs 131072
//	hantrace stats -op allreduce -seed 3 -faults drops
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/hanrepro/han/internal/bench"
	"github.com/hanrepro/han/internal/cluster"
	"github.com/hanrepro/han/internal/coll"
	"github.com/hanrepro/han/internal/fault"
	"github.com/hanrepro/han/internal/han"
	"github.com/hanrepro/han/internal/trace"
)

func main() {
	args := os.Args[1:]
	mode := "chrome"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		mode = args[0]
		args = args[1:]
	}
	switch mode {
	case "chrome", "stats", "critpath", "metrics":
	default:
		fmt.Fprintf(os.Stderr, "hantrace: unknown subcommand %q (want stats, critpath, or metrics)\n", mode)
		os.Exit(2)
	}

	fs := flag.NewFlagSet("hantrace "+mode, flag.ExitOnError)
	op := fs.String("op", "bcast", "collective: bcast, allreduce, reduce, gather, allgather, scatter")
	size := fs.Int("size", 4<<20, "message size in bytes")
	machine := fs.String("machine", "shaheen", "machine preset: "+strings.Join(cluster.PresetNames(), ", "))
	nodes := fs.Int("nodes", 4, "override node count (0 = preset default)")
	ppn := fs.Int("ppn", 8, "override processes per node (0 = preset default)")
	fsize := fs.Int("fs", 0, "HAN segment size override in bytes (0 = decision function picks)")
	seed := fs.Int64("seed", 0, "RNG seed (0 = library default)")
	faultsFlag := fs.String("faults", "", "built-in fault plan to inject: "+strings.Join(fault.BuiltinNames(), ", "))
	out := fs.String("o", "", "output file (default: stdout; chrome mode defaults to han.trace.json)")
	fs.Parse(args)

	spec, err := cluster.ByName(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hantrace:", err)
		os.Exit(2)
	}
	if *nodes > 0 {
		spec.Nodes = *nodes
	}
	if *ppn > 0 {
		spec.PPN = *ppn
	}

	kind, err := coll.KindByName(*op)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hantrace:", err)
		os.Exit(2)
	}

	sc := bench.Scenario{
		Spec: spec, Kind: kind, Size: *size, Seed: *seed,
		Cfg: han.Config{FS: *fsize},
	}
	if *faultsFlag != "" {
		plan, err := fault.Builtin(*faultsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hantrace:", err)
			os.Exit(2)
		}
		sc.Faults = &plan
	}

	o, err := bench.Observe(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hantrace:", err)
		os.Exit(1)
	}

	dst := io.Writer(os.Stdout)
	path := *out
	if mode == "chrome" && path == "" {
		path = "han.trace.json"
	}
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hantrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}

	switch mode {
	case "stats":
		err = o.WriteStats(dst)
	case "critpath":
		err = o.WriteCritPath(dst)
	case "metrics":
		err = o.WriteMetrics(dst)
	case "chrome":
		err = o.WriteChrome(dst)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hantrace:", err)
		os.Exit(1)
	}
	if mode == "chrome" {
		sum := o.Trace.Summary()
		fmt.Printf("hantrace: %s finished at t=%.3f ms (virtual)\n", sc, float64(o.End)*1e3)
		fmt.Printf("hantrace: %d events (%d task spans) written to %s\n",
			o.Trace.Len(), sum[trace.KindTaskBegin], path)
	}
}
