// Command hantrace runs one HAN collective with tracing enabled and writes
// a Chrome trace-event file (load it in chrome://tracing or
// https://ui.perfetto.dev) showing the task pipeline: the ib/sb overlap of
// Fig 1 and the four-stage Allreduce pipeline of Fig 5 appear as
// overlapping spans on the rank timelines.
//
// Usage:
//
//	hantrace -op bcast -size 4194304 -nodes 4 -ppn 8 -o bcast.trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hanrepro/han/internal/cluster"
	"github.com/hanrepro/han/internal/han"
	"github.com/hanrepro/han/internal/mpi"
	"github.com/hanrepro/han/internal/sim"
	"github.com/hanrepro/han/internal/trace"
)

func main() {
	op := flag.String("op", "bcast", "collective: bcast or allreduce")
	size := flag.Int("size", 4<<20, "message size in bytes")
	nodes := flag.Int("nodes", 4, "node count")
	ppn := flag.Int("ppn", 8, "processes per node")
	out := flag.String("o", "han.trace.json", "output Chrome trace file")
	flag.Parse()

	spec := cluster.ShaheenII()
	spec.Nodes, spec.PPN = *nodes, *ppn
	eng := sim.New()
	w := mpi.NewWorld(cluster.NewMachine(eng, spec), mpi.OpenMPI())
	w.Tracer = trace.New()
	h := han.New(w)

	w.Start(func(p *mpi.Proc) {
		switch *op {
		case "bcast":
			h.Bcast(p, mpi.Phantom(*size), 0, han.Config{})
		case "allreduce":
			h.Allreduce(p, mpi.Phantom(*size), mpi.Phantom(*size), mpi.OpSum, mpi.Float64, han.Config{})
		default:
			panic("hantrace: unknown op " + *op)
		}
	})
	if err := eng.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "hantrace:", err)
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hantrace:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := w.Tracer.WriteChromeTrace(f); err != nil {
		fmt.Fprintln(os.Stderr, "hantrace:", err)
		os.Exit(1)
	}
	sum := w.Tracer.Summary()
	fmt.Printf("hantrace: %s of %s on %d ranks finished at t=%.3f ms (virtual)\n",
		*op, han.SizeString(*size), spec.Ranks(), float64(eng.Now())*1e3)
	fmt.Printf("hantrace: %d events (%d task spans) written to %s\n",
		w.Tracer.Len(), sum[trace.KindTaskBegin], *out)
}
