// Command hand is the tuning-decision service: a long-running server that
// answers HAN's decision function — (cluster, collective, message size) →
// module/segment configuration — over the internal/serve wire protocol.
// It preloads autotuner lookup tables, optionally tunes unknown clusters
// on demand (single-flight, on internal/exec workers), and can re-tune
// every table on an interval, atomically swapping in the fresh snapshots
// without blocking readers.
//
// Usage:
//
//	hand -tables mini.json,shaheen.json
//	hand -listen 127.0.0.1:7411 -tune -retune 10m -metrics hand.om
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/hanrepro/han/internal/autotune"
	"github.com/hanrepro/han/internal/cluster"
	"github.com/hanrepro/han/internal/coll"
	"github.com/hanrepro/han/internal/metrics"
	"github.com/hanrepro/han/internal/mpi"
	"github.com/hanrepro/han/internal/serve"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7411", "TCP listen address for the wire protocol")
	tables := flag.String("tables", "", "comma-separated autotuner table files (JSON); each serves under its preset name (its Machine name if no preset matches)")
	tune := flag.Bool("tune", false, "tune unknown clusters on demand (cluster names must be machine presets: "+strings.Join(cluster.PresetNames(), ", ")+")")
	method := flag.String("method", "task+heur", "tuning method for on-demand and re-tunes: exhaustive, exhaustive+heur, task, task+heur")
	workers := flag.Int("workers", 0, "concurrent measurement workers per tune (0 = GOMAXPROCS)")
	retune := flag.Duration("retune", 0, "re-tune every published table on this interval (0 = never); requires -tune")
	shards := flag.Int("shards", 0, "table shard count, rounded up to a power of two (0 = 16)")
	cache := flag.Int("cache", 0, "total interpolation-LRU capacity across shards (0 = 4096, negative disables)")
	metricsOut := flag.String("metrics", "", "write an OpenMetrics export of the hand_* counters to this file on shutdown (docs/OBSERVABILITY.md)")
	flag.Parse()

	m, err := methodByName(*method)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hand:", err)
		os.Exit(2)
	}

	opts := serve.Options{Shards: *shards, LRUSize: *cache}
	if *tune {
		opts.Tuner = func(name string) (*autotune.Table, error) {
			spec, err := cluster.ByName(name)
			if err != nil {
				return nil, err
			}
			env := autotune.NewEnv(spec, mpi.OpenMPI())
			res := autotune.RunSearch(env, autotune.DefaultSpace(),
				[]coll.Kind{coll.Bcast, coll.Allreduce}, m,
				autotune.SearchOpts{Workers: *workers})
			return res.Table, nil
		}
	}
	s := serve.NewServer(opts)

	if *tables != "" {
		for _, path := range strings.Split(*tables, ",") {
			path = strings.TrimSpace(path)
			t, err := autotune.Load(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hand:", err)
				os.Exit(1)
			}
			name := servingName(t.Machine)
			keys := s.PublishTable(name, t)
			fmt.Printf("hand: %s: published %d table(s) for machine %q\n", path, len(keys), name)
		}
	}
	if s.TableCount() == 0 && !*tune {
		fmt.Fprintln(os.Stderr, "hand: nothing to serve: give -tables and/or -tune")
		os.Exit(2)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hand:", err)
		os.Exit(1)
	}
	stop := s.Start(l)
	var stopRetuner func()
	if *retune > 0 {
		if !*tune {
			fmt.Fprintln(os.Stderr, "hand: -retune requires -tune")
			os.Exit(2)
		}
		stopRetuner = s.StartRetuner(*retune)
		fmt.Printf("hand: re-tuning every %s\n", *retune)
	}
	fmt.Printf("hand: serving %d table(s) on %s\n", s.TableCount(), l.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("hand: shutting down")
	if stopRetuner != nil {
		stopRetuner()
	}
	stop()

	c := s.Counters()
	fmt.Printf("hand: served %d decisions (%d cache hits, %d tunes, %d swaps, p99 %s)\n",
		c.Decisions, c.CacheHits, c.Tunes, c.Swaps, c.LatencyP99)
	if *metricsOut != "" {
		reg := metrics.New()
		s.PublishMetrics(reg)
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hand:", err)
			os.Exit(1)
		}
		// Samples are wall-clock-side counters, not virtual-time series;
		// stamp 0 like the sweep exports.
		err = reg.WriteOpenMetrics(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "hand:", err)
			os.Exit(1)
		}
	}
}

// servingName maps a table's Machine field — a preset display name like
// "Mini" — back to the CLI preset name ("mini") that clients query with
// and the on-demand tuner resolves through cluster.ByName, so preloaded
// and tuned-on-demand tables share one identity per cluster. Machines
// that match no preset serve under their Machine name verbatim.
func servingName(machine string) string {
	for _, p := range cluster.PresetNames() {
		if spec, err := cluster.ByName(p); err == nil && spec.Name == machine {
			return p
		}
	}
	return machine
}

func methodByName(name string) (autotune.Method, error) {
	switch name {
	case "exhaustive":
		return autotune.Exhaustive, nil
	case "exhaustive+heur":
		return autotune.ExhaustiveHeuristics, nil
	case "task":
		return autotune.TaskBased, nil
	case "task+heur":
		return autotune.Combined, nil
	}
	return 0, fmt.Errorf("unknown tuning method %q", name)
}
