package main

import (
	"testing"

	"github.com/hanrepro/han/internal/coll"
)

func TestScalePresetsAreValid(t *testing.T) {
	for name, sc := range scales {
		for _, spec := range []struct {
			label string
			ranks int
		}{
			{"shaheen", sc.Shaheen.Ranks()},
			{"stampede", sc.Stampede.Ranks()},
			{"tuning", sc.Tuning.Ranks()},
		} {
			if spec.ranks <= 0 {
				t.Errorf("%s/%s: no ranks", name, spec.label)
			}
		}
		if err := sc.Shaheen.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if err := sc.Stampede.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if err := sc.Tuning.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if sc.TaskNodes < 2 {
			t.Errorf("%s: task benchmarks need >= 2 nodes", name)
		}
		if len(sc.Small) == 0 || len(sc.Large) == 0 || len(sc.Space.Msgs) == 0 {
			t.Errorf("%s: empty sweep axes", name)
		}
		if ts := sc.taskSpec(); ts.Nodes != sc.TaskNodes {
			t.Errorf("%s: taskSpec has %d nodes", name, ts.Nodes)
		}
	}
}

func TestPaperScaleMatchesThePaper(t *testing.T) {
	p := scales["paper"]
	if p.Shaheen.Ranks() != 4096 {
		t.Errorf("paper Shaheen should be 4096 processes, got %d", p.Shaheen.Ranks())
	}
	if p.Stampede.Ranks() != 1536 {
		t.Errorf("paper Stampede should be 1536 processes, got %d", p.Stampede.Ranks())
	}
	if p.Tuning.Nodes != 64 || p.Tuning.PPN != 12 {
		t.Errorf("paper tuning machine should be 64x12, got %dx%d", p.Tuning.Nodes, p.Tuning.PPN)
	}
	if p.ASPIters != 1536 {
		t.Errorf("paper ASP should time 1536 iterations, got %d", p.ASPIters)
	}
}

func TestTaskConfigsCoverSubmodulesAndAlgs(t *testing.T) {
	cfgs := taskConfigs(64 << 10)
	seenMods := map[string]bool{}
	seenAlgs := map[coll.Alg]bool{}
	for _, c := range cfgs {
		seenMods[c.IMod] = true
		seenAlgs[c.IBAlg] = true
		if c.FS != 64<<10 {
			t.Errorf("config fs = %d", c.FS)
		}
	}
	for _, m := range []string{"libnbc", "adapt"} {
		if !seenMods[m] {
			t.Errorf("task configs missing module %s", m)
		}
	}
	for _, a := range []coll.Alg{coll.AlgBinomial, coll.AlgBinary, coll.AlgChain} {
		if !seenAlgs[a] {
			t.Errorf("task configs missing algorithm %v", a)
		}
	}
}
