// Command hanexp regenerates every table and figure of the HAN paper's
// evaluation on the simulated clusters. Each experiment prints the same
// rows/series the paper reports; absolute values come from the simulation
// model, so shapes (who wins, by what factor, where crossovers fall) are
// the comparison target, not the authors' testbed numbers.
//
// Usage:
//
//	hanexp -all                 # everything, at the selected scale
//	hanexp -fig 10              # one figure (2,3,4,6,7,8,9,10,11,12,13,14,15)
//	hanexp -tab 3               # Table III (ASP)
//	hanexp -ablate pipeline     # ablations (pipeline, split, overlap, heuristics, levels)
//	hanexp -scale small|mid|paper
//
// The paper scale (4096/1536 processes, full sweeps) reproduces the
// original experiment sizes and takes correspondingly long; small and mid
// preserve the hardware ratios at reduced node counts.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (2,3,4,6,7,8,9,10,11,12,13,14,15)")
	tab := flag.Int("tab", 0, "table number to regenerate (3)")
	all := flag.Bool("all", false, "run every experiment")
	ablate := flag.String("ablate", "", "ablation to run: pipeline, split, overlap, heuristics")
	scale := flag.String("scale", "small", "experiment scale: small, mid, or paper")
	workers := flag.Int("workers", 0, "concurrent measurement workers (0 = GOMAXPROCS); output is identical for any value")
	flag.Parse()
	expWorkers = *workers

	sc, ok := scales[*scale]
	if !ok {
		fmt.Fprintf(os.Stderr, "hanexp: unknown scale %q (want small, mid, or paper)\n", *scale)
		os.Exit(2)
	}

	switch {
	case *all:
		for _, f := range []int{2, 3, 4, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15} {
			runFig(f, sc)
		}
		runTab(3, sc)
		for _, a := range []string{"pipeline", "split", "overlap", "heuristics", "levels", "online", "gpu", "noise"} {
			runAblation(a, sc)
		}
	case *fig != 0:
		runFig(*fig, sc)
	case *tab != 0:
		runTab(*tab, sc)
	case *ablate != "":
		runAblation(*ablate, sc)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runFig(f int, sc Scale) {
	switch f {
	case 2:
		Fig2(sc)
	case 3:
		Fig3(sc)
	case 4:
		Fig4(sc)
	case 6:
		Fig6(sc)
	case 7:
		Fig7(sc)
	case 8:
		Fig8and9(sc, true)
	case 9:
		Fig8and9(sc, false)
	case 10:
		Fig10(sc)
	case 11:
		Fig11(sc)
	case 12:
		Fig12(sc)
	case 13:
		Fig13(sc)
	case 14:
		Fig14(sc)
	case 15:
		Fig15(sc)
	default:
		fmt.Fprintf(os.Stderr, "hanexp: no such figure %d (figs 1 and 5 are design diagrams)\n", f)
		os.Exit(2)
	}
}

func runTab(t int, sc Scale) {
	if t != 3 {
		fmt.Fprintf(os.Stderr, "hanexp: no such table %d (tables I and II are schemas)\n", t)
		os.Exit(2)
	}
	Tab3(sc)
}

func runAblation(name string, sc Scale) {
	switch name {
	case "pipeline":
		AblatePipeline(sc)
	case "split":
		AblateSplit(sc)
	case "overlap":
		AblateOverlap(sc)
	case "heuristics":
		AblateHeuristics(sc)
	case "levels":
		AblateLevels(sc)
	case "online":
		AblateOnline(sc)
	case "gpu":
		AblateGPU(sc)
	case "noise":
		AblateNoise(sc)
	default:
		fmt.Fprintf(os.Stderr, "hanexp: unknown ablation %q\n", name)
		os.Exit(2)
	}
}
