package main

import (
	"fmt"

	"github.com/hanrepro/han/internal/apps"
	"github.com/hanrepro/han/internal/autotune"
	"github.com/hanrepro/han/internal/bench"
	"github.com/hanrepro/han/internal/cluster"
	"github.com/hanrepro/han/internal/coll"
	"github.com/hanrepro/han/internal/exec"
	"github.com/hanrepro/han/internal/han"
	"github.com/hanrepro/han/internal/mpi"
	"github.com/hanrepro/han/internal/rivals"
	"github.com/hanrepro/han/internal/sim"
)

// expWorkers is the -workers flag: how many host workers the measurement
// fan-outs use (0 = GOMAXPROCS).
var expWorkers int

// fanOut runs job(0..n-1) on the experiment executor. Jobs build private
// worlds and write into index-addressed slots; callers print serially
// afterwards, so every figure is identical for any worker count.
func fanOut(n int, job func(i int)) {
	exec.New(expWorkers).Run(n, job)
}

// Scale is a size preset: the paper's machines, or the same hardware ratios
// at reduced node counts.
type Scale struct {
	Name     string
	Shaheen  cluster.Spec // figs 10, 11, 13 (+ 2, 3, 6 at TaskNodes nodes)
	Stampede cluster.Spec // figs 12, 14, 15; table III
	Tuning   cluster.Spec // figs 4, 7, 8, 9
	// TaskNodes is the node count of the task microbenchmarks (the paper
	// uses 6 nodes for figs 2 and 6).
	TaskNodes int
	Small     []int // IMB small-message sweep
	Large     []int // IMB large-message sweep
	Space     autotune.Space
	ASPIters  int
	Horovod   []int // node counts of the Fig 15 sweep
}

func derive(base cluster.Spec, nodes, ppn int) cluster.Spec {
	base.Nodes, base.PPN = nodes, ppn
	return base
}

var scales = map[string]Scale{
	"small": {
		Name:      "small",
		Shaheen:   derive(cluster.ShaheenII(), 8, 8),
		Stampede:  derive(cluster.Stampede2(), 8, 12),
		Tuning:    derive(cluster.Tuning64(), 8, 4),
		TaskNodes: 6,
		Small:     []int{4, 64, 1 << 10, 16 << 10, 128 << 10},
		Large:     []int{1 << 20, 4 << 20, 16 << 20, 64 << 20},
		Space: autotune.Space{
			Msgs:  []int{4 << 10, 256 << 10, 1 << 20, 4 << 20},
			FS:    []int{64 << 10, 256 << 10, 1 << 20},
			IMods: han.InterNames(),
			SMods: han.IntraNames(),
			IBS:   []int{64 << 10},
		},
		ASPIters: 32,
		Horovod:  []int{2, 4, 8},
	},
	"mid": {
		Name:      "mid",
		Shaheen:   derive(cluster.ShaheenII(), 16, 16),
		Stampede:  derive(cluster.Stampede2(), 16, 24),
		Tuning:    derive(cluster.Tuning64(), 12, 8),
		TaskNodes: 6,
		Small:     bench.SmallSizes(),
		Large:     bench.LargeSizes(),
		Space: autotune.Space{
			Msgs:  []int{4 << 10, 256 << 10, 1 << 20, 4 << 20},
			FS:    []int{64 << 10, 256 << 10, 512 << 10, 1 << 20},
			IMods: han.InterNames(),
			SMods: han.IntraNames(),
			IBS:   []int{64 << 10},
		},
		ASPIters: 64,
		Horovod:  []int{2, 4, 8, 16},
	},
	"paper": {
		Name:      "paper",
		Shaheen:   cluster.ShaheenII(),
		Stampede:  cluster.Stampede2(),
		Tuning:    cluster.Tuning64(),
		TaskNodes: 6,
		Small:     bench.SmallSizes(),
		Large:     bench.LargeSizes(),
		Space:     autotune.DefaultSpace(),
		ASPIters:  1536,
		Horovod:   []int{4, 8, 16, 32},
	},
}

// taskSpec is the machine for the Fig 2/3/6 task microbenchmarks.
func (sc Scale) taskSpec() cluster.Spec {
	return derive(sc.Shaheen, sc.TaskNodes, sc.Shaheen.PPN)
}

func header(title string) {
	fmt.Printf("\n## %s  [scale=%s]\n\n", title, activeScale)
}

var activeScale string

// taskConfigs are the submodule x algorithm combinations shown in the task
// microbenchmarks.
func taskConfigs(fs int) []han.Config {
	return []han.Config{
		{FS: fs, IMod: "libnbc", SMod: "sm", IBAlg: coll.AlgBinomial, IRAlg: coll.AlgBinomial},
		{FS: fs, IMod: "adapt", SMod: "sm", IBAlg: coll.AlgBinomial, IRAlg: coll.AlgBinomial, IBS: 32 << 10, IRS: 32 << 10},
		{FS: fs, IMod: "adapt", SMod: "sm", IBAlg: coll.AlgBinary, IRAlg: coll.AlgBinary, IBS: 32 << 10, IRS: 32 << 10},
		{FS: fs, IMod: "adapt", SMod: "sm", IBAlg: coll.AlgChain, IRAlg: coll.AlgChain, IBS: 32 << 10, IRS: 32 << 10},
	}
}

func cfgLabel(c han.Config) string {
	return fmt.Sprintf("%s/%v", c.IMod, c.IBAlg)
}

// Fig2 reproduces the task-cost bars: per node leader, the cost of ib(0),
// sb(0), concurrent sb+ib with simultaneous starts, and sbib(1) measured
// inside the real pipeline (delayed starts included).
func Fig2(sc Scale) {
	activeScale = sc.Name
	header("Fig 2 — cost of tasks ib, sb and sbib per node leader (64KB segments, rank 0 root)")
	env := autotune.NewEnv(sc.taskSpec(), mpi.OpenMPI())
	configs := taskConfigs(64 << 10)
	bts := make([]autotune.BcastTasks, len(configs))
	fanOut(len(configs), func(i int) {
		bts[i] = env.MeasureBcastTasks(configs[i], &autotune.Meter{})
	})
	for i, cfg := range configs {
		bt := bts[i]
		fmt.Printf("config %s:\n", cfgLabel(cfg))
		fmt.Printf("  %-8s%12s%12s%16s%14s\n", "leader", "ib(0) µs", "sb(0) µs", "conc sb+ib µs", "sbib(1) µs")
		for l := range bt.IB0 {
			fmt.Printf("  %-8d%12.1f%12.1f%16.1f%14.1f\n",
				l, bt.IB0[l]*1e6, bt.SB0[l]*1e6, bt.SBIBConc[l]*1e6, bt.SBIB[0][l]*1e6)
		}
	}
	fmt.Println("\nExpected shape: leaders finish ib(0) at different times; conc < ib+sb but")
	fmt.Println("conc > max(ib, sb) (overlap significant yet imperfect); sbib(1) differs from conc.")
}

// Fig3 reproduces the sbib(i) stabilisation series on one node leader.
func Fig3(sc Scale) {
	activeScale = sc.Name
	header("Fig 3 — cost of sbib(i) on one node leader, i = 1..8")
	env := autotune.NewEnv(sc.taskSpec(), mpi.OpenMPI())
	configs := taskConfigs(64 << 10)
	bts := make([]autotune.BcastTasks, len(configs))
	fanOut(len(configs), func(i int) {
		bts[i] = env.MeasureBcastTasks(configs[i], &autotune.Meter{})
	})
	leader := sc.TaskNodes / 2 // "node leader 2" in the paper
	fmt.Printf("%-6s", "i")
	for _, cfg := range configs {
		fmt.Printf("%18s", cfgLabel(cfg))
	}
	fmt.Println(" (µs)")
	for i := 0; i < autotune.SBIBSeriesLen-1; i++ {
		fmt.Printf("%-6d", i+1)
		for c := range configs {
			fmt.Printf("%18.1f", bts[c].SBIB[i][leader]*1e6)
		}
		fmt.Println()
	}
	fmt.Println("\nExpected shape: the first iterations pay pipeline warm-up; the cost stabilises.")
}

// modelValidation drives Figs 4 and 7: estimated (cost model) vs actual
// (measured) time over submodule/algorithm/segment-size combinations.
func modelValidation(sc Scale, kind coll.Kind, m int) {
	env := autotune.NewEnv(sc.Tuning, mpi.OpenMPI())
	meter := &autotune.Meter{}
	cands := sc.Space.Expand(kind, m, false, sc.Tuning.Nodes)
	ests := make([]float64, len(cands))
	acts := make([]float64, len(cands))
	fanOut(len(cands), func(i int) {
		switch kind {
		case coll.Bcast:
			bt := env.MeasureBcastTasks(cands[i].Cfg, meter)
			ests[i] = autotune.EstimateBcast(bt, m)
		case coll.Allreduce:
			at := env.MeasureAllreduceTasks(cands[i].Cfg, meter)
			ests[i] = autotune.EstimateAllreduce(at, m)
		}
		acts[i] = env.MeasureCollective(kind, m, cands[i].Cfg, 2, meter)
	})
	fmt.Printf("%-52s%14s%14s\n", "configuration", "estimated µs", "actual µs")
	bestEst, bestAct := -1.0, -1.0
	var cfgEst, cfgAct han.Config
	for i, cand := range cands {
		est, act := ests[i], acts[i]
		fmt.Printf("%-52s%14.1f%14.1f\n", cand.Cfg.String(), est*1e6, act*1e6)
		if bestEst < 0 || est < bestEst {
			bestEst, cfgEst = est, cand.Cfg
		}
		if bestAct < 0 || act < bestAct {
			bestAct, cfgAct = act, cand.Cfg
		}
	}
	fmt.Printf("\nmodel-chosen optimum:    %s\n", cfgEst)
	fmt.Printf("measured optimum:        %s\n", cfgAct)
	if cfgEst == cfgAct {
		fmt.Println("=> identical (the paper finds the same at 4MB)")
	} else {
		env2 := autotune.NewEnv(sc.Tuning, mpi.OpenMPI())
		chosen := env2.MeasureCollective(kind, m, cfgEst, 2, meter)
		fmt.Printf("=> different; model pick measures %.1fµs vs optimum %.1fµs (%.1f%% off)\n",
			chosen*1e6, bestAct*1e6, 100*(chosen-bestAct)/bestAct)
	}
}

// Fig4 validates the Bcast cost model (equation 3) on a 4MB message.
func Fig4(sc Scale) {
	activeScale = sc.Name
	header("Fig 4 — MPI_Bcast cost model validation, 4MB message")
	modelValidation(sc, coll.Bcast, 4<<20)
}

// Fig6 reproduces the ib/ir full-duplex overlap measurement.
func Fig6(sc Scale) {
	activeScale = sc.Name
	header("Fig 6 — overlap between ib and ir (64KB segments, rank 0 root)")
	spec := sc.taskSpec()
	for _, cfg := range taskConfigs(64 << 10) {
		ibT := make([]float64, spec.Nodes)
		irT := make([]float64, spec.Nodes)
		concT := make([]float64, spec.Nodes)
		eng := sim.New()
		w := mpi.NewWorld(cluster.NewMachine(eng, spec), mpi.OpenMPI())
		h := han.New(w)
		cfg := cfg
		w.Start(func(p *mpi.Proc) {
			if d := h.TimeIB(p, cfg); d > 0 {
				ibT[p.Node()] = float64(d)
			}
			if d := h.TimeIR(p, mpi.OpSum, mpi.Float64, cfg); d > 0 {
				irT[p.Node()] = float64(d)
			}
			if d := h.TimeConcurrentIBIR(p, mpi.OpSum, mpi.Float64, cfg); d > 0 {
				concT[p.Node()] = float64(d)
			}
		})
		if err := eng.Run(); err != nil {
			panic(err)
		}
		fmt.Printf("config %s:\n", cfgLabel(cfg))
		fmt.Printf("  %-8s%12s%12s%18s\n", "leader", "ib µs", "ir µs", "conc ib+ir µs")
		for l := 0; l < spec.Nodes; l++ {
			fmt.Printf("  %-8d%12.1f%12.1f%18.1f\n", l, ibT[l]*1e6, irT[l]*1e6, concT[l]*1e6)
		}
	}
	fmt.Println("\nExpected shape: conc well below ib+ir (high overlap on the full-duplex fabric).")
}

// Fig7 validates the Allreduce cost model (equation 4) on a 4MB message.
func Fig7(sc Scale) {
	activeScale = sc.Name
	header("Fig 7 — MPI_Allreduce cost model validation, 4MB message")
	modelValidation(sc, coll.Allreduce, 4<<20)
}

// Fig8and9 runs the four tuning methods and prints the Fig 8 cost bars and
// the Fig 9 accuracy comparison from the same searches.
func Fig8and9(sc Scale, costOnly bool) {
	activeScale = sc.Name
	header("Figs 8 & 9 — autotuning cost and accuracy (Bcast + Allreduce)")
	env := autotune.NewEnv(sc.Tuning, mpi.OpenMPI())
	kinds := []coll.Kind{coll.Bcast, coll.Allreduce}
	methods := []autotune.Method{
		autotune.Exhaustive, autotune.ExhaustiveHeuristics,
		autotune.TaskBased, autotune.Combined,
	}
	results := make(map[autotune.Method]autotune.Result)
	for _, m := range methods {
		results[m] = autotune.RunSearch(env, sc.Space, kinds, m, autotune.SearchOpts{Iters: 2, Workers: expWorkers})
	}

	exCost := results[autotune.Exhaustive].Table.TuningCost
	fmt.Println("Fig 8 — total search time per tuning method:")
	fmt.Printf("%-18s%16s%12s%12s\n", "method", "bench runs", "time (s)", "% of exh.")
	for _, m := range methods {
		t := results[m].Table
		fmt.Printf("%-18s%16d%12.2f%12.1f\n", t.Method, t.Measurements, t.TuningCost, 100*t.TuningCost/exCost)
	}
	if costOnly {
		fmt.Println("\n(paper: heuristics 26.8%, task-based large cut, combined 4.3% of exhaustive)")
	}

	fmt.Println("\nFig 9 — time-to-completion of the selected configurations (µs):")
	fmt.Printf("%-28s%12s%12s%12s%12s%12s%12s%12s\n",
		"input", "exh.best", "exh.median", "exh.avg", "exh+heur", "task", "task+heur", "")
	meter := &autotune.Meter{}
	entries := results[autotune.Exhaustive].Table.Entries
	picksFor := []autotune.Method{autotune.ExhaustiveHeuristics, autotune.TaskBased, autotune.Combined}
	picks := make([]float64, len(entries)*len(picksFor))
	fanOut(len(picks), func(j int) {
		in := entries[j/len(picksFor)].In
		cfg := results[picksFor[j%len(picksFor)]].Table.Decide(in.T, in.M)
		picks[j] = env.MeasureCollective(in.T, in.M, cfg, 2, meter)
	})
	for i, e := range entries {
		in := e.In
		st := results[autotune.Exhaustive].Stats[in]
		row := []float64{st.Best, st.Median, st.Average}
		row = append(row, picks[i*len(picksFor):(i+1)*len(picksFor)]...)
		fmt.Printf("%-28s", in.String())
		for _, v := range row {
			fmt.Printf("%12.1f", v*1e6)
		}
		fmt.Println()
	}
	fmt.Println("\nExpected shape: task-based ~= exhaustive best; heuristics slightly less accurate;")
	fmt.Println("median and average far above best (tuning matters).")
}

// imbComparison drives the Figs 10/12/13/14 benchmark comparisons.
func imbComparison(title string, spec cluster.Spec, kind coll.Kind, systems []bench.System, sizes []int) {
	names := make([]string, len(systems))
	for i, sys := range systems {
		names[i] = sys.Name
	}
	points := bench.IMBAll(spec, systems, kind, sizes, bench.IMBOpts{}, expWorkers)
	fmt.Print(bench.FormatTable(title+" (µs)", sizes, names, points))
	// Speedup rows: HAN vs each rival.
	fmt.Printf("%-10s", "speedup")
	for _, n := range names {
		if n == "HAN" {
			fmt.Printf("%16s", "-")
			continue
		}
		best := 0.0
		for i := range sizes {
			s := points[n][i].Seconds / points["HAN"][i].Seconds
			if s > best {
				best = s
			}
		}
		fmt.Printf("%15.2fx", best)
	}
	fmt.Println("   (max over sizes, HAN vs column)")
}

// Fig10 compares MPI_Bcast on the Shaheen II machine.
func Fig10(sc Scale) {
	activeScale = sc.Name
	header(fmt.Sprintf("Fig 10 — MPI_Bcast on Shaheen II (%d processes)", sc.Shaheen.Ranks()))
	systems := []bench.System{
		bench.HANSystem(nil),
		bench.RivalSystem(rivals.OpenMPIDefault),
		bench.RivalSystem(rivals.CrayMPI),
	}
	imbComparison("Fig 10a — small messages", sc.Shaheen, coll.Bcast, systems, sc.Small)
	imbComparison("Fig 10b — large messages", sc.Shaheen, coll.Bcast, systems, sc.Large)
	fmt.Println("\nExpected shape: HAN >> default OMPI everywhere; Cray slightly ahead for small,")
	fmt.Println("HAN ahead for large (up to ~2x) thanks to ib/sb overlap.")
}

// Fig11 compares Netpipe P2P bandwidth between Open MPI and Cray MPI.
func Fig11(sc Scale) {
	activeScale = sc.Name
	header("Fig 11 — P2P performance on Shaheen II (Netpipe)")
	spec := derive(sc.Shaheen, 2, sc.Shaheen.PPN)
	sizes := []int{64, 512, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 512 << 10, 2 << 20, 8 << 20, 32 << 20, 128 << 20}
	ompi := bench.Netpipe(spec, mpi.OpenMPI(), sizes)
	cray := bench.Netpipe(spec, rivals.CrayMPI.Personality(), sizes)
	fmt.Printf("%-10s%16s%16s\n", "size", "OpenMPI MB/s", "CrayMPI MB/s")
	for i, s := range sizes {
		fmt.Printf("%-10s%16.0f%16.0f\n", han.SizeString(s), ompi[i].MBps, cray[i].MBps)
	}
	fmt.Println("\nExpected shape: Cray ahead between 512B and 2MB (worst gap 16KB-512KB);")
	fmt.Println("identical peak for large messages.")
}

// Fig12 compares MPI_Bcast on the Stampede2 machine.
func Fig12(sc Scale) {
	activeScale = sc.Name
	header(fmt.Sprintf("Fig 12 — MPI_Bcast on Stampede2 (%d processes)", sc.Stampede.Ranks()))
	systems := []bench.System{
		bench.HANSystem(nil),
		bench.RivalSystem(rivals.OpenMPIDefault),
		bench.RivalSystem(rivals.IntelMPI),
		bench.RivalSystem(rivals.MVAPICH2),
	}
	imbComparison("Fig 12a — small messages", sc.Stampede, coll.Bcast, systems, sc.Small)
	imbComparison("Fig 12b — large messages", sc.Stampede, coll.Bcast, systems, sc.Large)
	fmt.Println("\nExpected shape: HAN fastest on both ranges (paper: up to 1.15x/2.28x/5.35x small,")
	fmt.Println("1.39x/3.83x/1.73x large vs Intel/MVAPICH2/default OMPI).")
}

// Fig13 compares MPI_Allreduce on the Shaheen II machine.
func Fig13(sc Scale) {
	activeScale = sc.Name
	header(fmt.Sprintf("Fig 13 — MPI_Allreduce on Shaheen II (%d processes)", sc.Shaheen.Ranks()))
	systems := []bench.System{
		bench.HANSystem(nil),
		bench.RivalSystem(rivals.OpenMPIDefault),
		bench.RivalSystem(rivals.CrayMPI),
	}
	imbComparison("Fig 13a — small messages", sc.Shaheen, coll.Allreduce, systems, sc.Small)
	imbComparison("Fig 13b — large messages", sc.Shaheen, coll.Allreduce, systems, sc.Large)
	fmt.Println("\nExpected shape: Cray ahead for small (HAN's SM/libnbc lack AVX reductions);")
	fmt.Println("HAN ahead beyond ~2MB (paper: up to 1.12x); default OMPI far behind.")
}

// Fig14 compares MPI_Allreduce on the Stampede2 machine.
func Fig14(sc Scale) {
	activeScale = sc.Name
	header(fmt.Sprintf("Fig 14 — MPI_Allreduce on Stampede2 (%d processes)", sc.Stampede.Ranks()))
	systems := []bench.System{
		bench.HANSystem(nil),
		bench.RivalSystem(rivals.OpenMPIDefault),
		bench.RivalSystem(rivals.IntelMPI),
		bench.RivalSystem(rivals.MVAPICH2),
	}
	imbComparison("Fig 14a — small messages", sc.Stampede, coll.Allreduce, systems, sc.Small)
	imbComparison("Fig 14b — large messages", sc.Stampede, coll.Allreduce, systems, sc.Large)
	fmt.Println("\nExpected shape: HAN fastest 4-64MB; MVAPICH2 (multi-leader ring) converges with")
	fmt.Println("HAN at the largest sizes, both well ahead of Intel and default OMPI.")
}

// Tab3 reproduces the ASP application comparison.
func Tab3(sc Scale) {
	activeScale = sc.Name
	header(fmt.Sprintf("Table III — ASP, %d processes, 1M matrix rows", sc.Stampede.Ranks()))
	prm := apps.DefaultASPParams(sc.Stampede.Ranks())
	prm.Iters = sc.ASPIters
	systems := []bench.System{
		bench.HANSystem(nil),
		bench.RivalSystem(rivals.IntelMPI),
		bench.RivalSystem(rivals.MVAPICH2),
		bench.RivalSystem(rivals.OpenMPIDefault),
	}
	var hanTotal float64
	fmt.Printf("%-18s%12s%12s%12s%14s\n", "system", "total (s)", "comm (s)", "comm %", "HAN speedup")
	rows := make([]apps.ASPResult, len(systems))
	for i, sys := range systems {
		rows[i] = apps.RunASP(sc.Stampede, sys, prm)
		if sys.Name == "HAN" {
			hanTotal = rows[i].Total
		}
	}
	for _, r := range rows {
		fmt.Printf("%-18s%12.3f%12.3f%12.2f%13.2fx\n",
			r.System, r.Total, r.Comm, 100*r.CommRatio, r.Total/hanTotal)
	}
	fmt.Println("\nExpected shape: HAN lowest comm ratio (paper: 46.41% vs 50.24/69.29/81.77)")
	fmt.Println("and overall speedups ~1.08x/1.8x/2.43x vs Intel/MVAPICH2/default OMPI.")
}

// Fig15 reproduces the Horovod scaling study.
func Fig15(sc Scale) {
	activeScale = sc.Name
	header("Fig 15 — Horovod/AlexNet on Stampede2 (images/s, higher is better)")
	prm := apps.DefaultHorovodParams()
	systems := []bench.System{
		bench.HANSystem(nil),
		bench.RivalSystem(rivals.OpenMPIDefault),
		bench.RivalSystem(rivals.IntelMPI),
	}
	fmt.Printf("%-10s", "procs")
	for _, sys := range systems {
		fmt.Printf("%18s", sys.Name)
	}
	fmt.Println()
	for _, nodes := range sc.Horovod {
		spec := derive(sc.Stampede, nodes, sc.Stampede.PPN)
		fmt.Printf("%-10d", spec.Ranks())
		for _, sys := range systems {
			r := apps.RunHorovod(spec, sys, prm)
			fmt.Printf("%18.0f", r.ImagesSec)
		}
		fmt.Println()
	}
	fmt.Println("\nExpected shape: gains for HAN grow with process count (paper: 24.3% over")
	fmt.Println("default OMPI, 9.05% over Intel MPI at 1536 processes).")
}

// AblatePipeline quantifies segmentation: HAN Bcast with the tuned fs
// versus a single segment (fs = m). The achievable gain is bounded by the
// balance between the inter-node (ib) and intra-node (sb) stage costs —
// pipelining turns ib+sb into ~max(ib, sb) — so the ablation sweeps the
// processes-per-node axis, which controls that balance.
func AblatePipeline(sc Scale) {
	activeScale = sc.Name
	header("Ablation — pipelining (fs = tuned vs fs = m), across ppn")
	for _, ppn := range []int{4, 8, 32} {
		spec := derive(sc.Shaheen, sc.Shaheen.Nodes, ppn)
		fmt.Printf("ppn=%d:\n", ppn)
		fmt.Printf("  %-10s%16s%16s%10s\n", "size", "pipelined µs", "monolithic µs", "gain")
		for _, m := range sc.Large {
			piped := measureHANBcast(spec, m, han.Config{})
			cfg := han.DefaultDecision(coll.Bcast, m)
			cfg.FS = m
			mono := measureHANBcast(spec, m, cfg)
			fmt.Printf("  %-10s%16.1f%16.1f%9.2fx\n", han.SizeString(m), piped*1e6, mono*1e6, mono/piped)
		}
	}
	fmt.Println("\nExpected shape: the gain peaks where ib and sb costs balance (overlap turns")
	fmt.Println("ib+sb into ~max(ib, sb)) and shrinks when either stage dominates. Known model")
	fmt.Println("deviation: our intra-node reads all cross one DRAM bus, which the inbound NIC")
	fmt.Println("DMA also uses, so the bus caps the bcast overlap benefit; on real nodes LLC")
	fmt.Println("serves concurrent readers and the paper's bcast pipelining gains are larger.")
	fmt.Println("Allreduce, whose four stages spread across more resources, shows the pipeline")
	fmt.Println("benefit clearly (see the split ablation).")
}

func measureHANBcast(spec cluster.Spec, m int, cfg han.Config) float64 {
	eng := sim.New()
	w := mpi.NewWorld(cluster.NewMachine(eng, spec), mpi.OpenMPI())
	h := han.New(w)
	var end sim.Time
	w.Start(func(p *mpi.Proc) {
		h.Bcast(p, mpi.Phantom(m), 0, cfg)
		if p.Now() > end {
			end = p.Now()
		}
	})
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return float64(end)
}

// AblateSplit compares HAN's split ir+ib inter-node stage against a fused
// inter-node allreduce (the design of SALaR and the multi-leader work the
// paper argues against in section III-B1).
func AblateSplit(sc Scale) {
	activeScale = sc.Name
	header("Ablation — split ir+ib vs fused inter-node allreduce")
	spec := sc.Shaheen
	fmt.Printf("%-10s%16s%16s%10s\n", "size", "split µs", "fused µs", "gain")
	for _, m := range sc.Large {
		split := measureHANAllreduce(spec, m, han.Config{})
		fused := measureFusedAllreduce(spec, m)
		fmt.Printf("%-10s%16.1f%16.1f%9.2fx\n", han.SizeString(m), split*1e6, fused*1e6, fused/split)
	}
	fmt.Println("\nExpected shape: splitting the inter-node allreduce into explicit ir + ib")
	fmt.Println("pipelines better and wins for large messages.")
}

func measureHANAllreduce(spec cluster.Spec, m int, cfg han.Config) float64 {
	eng := sim.New()
	w := mpi.NewWorld(cluster.NewMachine(eng, spec), mpi.OpenMPI())
	h := han.New(w)
	var end sim.Time
	w.Start(func(p *mpi.Proc) {
		h.Allreduce(p, mpi.Phantom(m), mpi.Phantom(m), mpi.OpSum, mpi.Float64, cfg)
		if p.Now() > end {
			end = p.Now()
		}
	})
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return float64(end)
}

// measureFusedAllreduce: sr per segment, a fused leader-level allreduce per
// segment (no ir/ib split, so no duplex overlap between reduction and
// broadcast traffic), then sb.
func measureFusedAllreduce(spec cluster.Spec, m int) float64 {
	eng := sim.New()
	w := mpi.NewWorld(cluster.NewMachine(eng, spec), mpi.OpenMPI())
	h := han.New(w)
	cfg := han.DefaultDecision(coll.Allreduce, m)
	var end sim.Time
	w.Start(func(p *mpi.Proc) {
		node := w.NodeComm(p.Node())
		leaders := w.LeaderComm()
		buf := mpi.Phantom(m)
		iAmLeader := w.Mach.IsNodeLeader(p.Rank)
		u := (m + cfg.FS - 1) / cfg.FS
		segOf := func(i int) mpi.Buf {
			lo := i * cfg.FS
			hi := lo + cfg.FS
			if hi > m {
				hi = m
			}
			return buf.Slice(lo, hi)
		}
		inter, err := h.Mods.Inter(cfg.IMod)
		if err != nil {
			panic(err) // the experiment table only names known submodules
		}
		// Three-stage pipeline: sr(t), fused-allreduce(t-1), sb(t-2).
		for t := 0; t < u+2; t++ {
			var reqs []*mpi.Request
			if t < u {
				reqs = append(reqs, h.SR(p, node, segOf(t), segOf(t), mpi.OpSum, mpi.Float64, cfg))
			}
			if j := t - 1; j >= 0 && j < u && iAmLeader {
				s := segOf(j)
				reqs = append(reqs, inter.Iallreduce(p, leaders, s, s, mpi.OpSum, mpi.Float64, coll.Params{Alg: cfg.IRAlg, Seg: cfg.IRS}))
			}
			if j := t - 2; j >= 0 && j < u {
				reqs = append(reqs, h.SB(p, node, segOf(j), cfg))
			}
			p.Wait(reqs...)
		}
		if p.Now() > end {
			end = p.Now()
		}
	})
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return float64(end)
}

// AblateOverlap compares the cost model's measured-task estimate against
// the perfect-overlap and no-overlap assumptions of prior models.
func AblateOverlap(sc Scale) {
	activeScale = sc.Name
	header("Ablation — cost model overlap assumptions (Bcast, 4MB)")
	env := autotune.NewEnv(sc.Tuning, mpi.OpenMPI())
	meter := &autotune.Meter{}
	m := 4 << 20
	configs := taskConfigs(512 << 10)
	overlapBTs := make([]autotune.BcastTasks, len(configs))
	overlapActs := make([]float64, len(configs))
	fanOut(len(configs), func(i int) {
		overlapBTs[i] = env.MeasureBcastTasks(configs[i], meter)
		overlapActs[i] = env.MeasureCollective(coll.Bcast, m, configs[i], 2, meter)
	})
	fmt.Printf("%-36s%12s%12s%12s%12s\n", "configuration", "actual µs", "HAN est", "perfect", "no-overlap")
	for i, cfg := range configs {
		bt, act := overlapBTs[i], overlapActs[i]
		est := autotune.EstimateBcast(bt, m)
		u := (m + cfg.FS - 1) / cfg.FS
		perfect, noOverlap := 0.0, 0.0
		for l := range bt.IB0 {
			ib, sb := bt.IB0[l], bt.SB0[l]
			mx := ib
			if sb > mx {
				mx = sb
			}
			if v := ib + float64(u-1)*mx + sb; v > perfect {
				perfect = v
			}
			if v := ib + float64(u-1)*(ib+sb) + sb; v > noOverlap {
				noOverlap = v
			}
		}
		fmt.Printf("%-36s%12.1f%12.1f%12.1f%12.1f\n",
			cfgLabel(cfg), act*1e6, est*1e6, perfect*1e6, noOverlap*1e6)
	}
	fmt.Println("\nExpected shape: HAN's measured-task estimate closest to actual;")
	fmt.Println("perfect-overlap underestimates, no-overlap overestimates.")
}

// AblateHeuristics quantifies the accuracy the heuristics give up.
func AblateHeuristics(sc Scale) {
	activeScale = sc.Name
	header("Ablation — heuristics accuracy trade-off")
	env := autotune.NewEnv(sc.Tuning, mpi.OpenMPI())
	kinds := []coll.Kind{coll.Bcast}
	ex := autotune.RunSearch(env, sc.Space, kinds, autotune.Exhaustive, autotune.SearchOpts{Iters: 2, Workers: expWorkers})
	eh := autotune.RunSearch(env, sc.Space, kinds, autotune.ExhaustiveHeuristics, autotune.SearchOpts{Iters: 2, Workers: expWorkers})
	fmt.Printf("search cost: full %.2fs, heuristics %.2fs (%.1f%%)\n",
		ex.Table.TuningCost, eh.Table.TuningCost, 100*eh.Table.TuningCost/ex.Table.TuningCost)
	meter := &autotune.Meter{}
	hMeas := make([]float64, len(ex.Table.Entries))
	fanOut(len(hMeas), func(i int) {
		in := ex.Table.Entries[i].In
		hMeas[i] = env.MeasureCollective(in.T, in.M, eh.Table.Decide(in.T, in.M), 2, meter)
	})
	fmt.Printf("%-28s%14s%18s%10s\n", "input", "full best µs", "heuristic pick µs", "loss")
	for i, e := range ex.Table.Entries {
		in := e.In
		best := ex.Stats[in].Best
		fmt.Printf("%-28s%14.1f%18.1f%9.1f%%\n", in.String(), best*1e6, hMeas[i]*1e6, 100*(hMeas[i]-best)/best)
	}
	fmt.Println("\nExpected shape: heuristics cut cost sharply at a small (sometimes zero) accuracy loss.")
}

// AblateLevels compares the two-level hierarchy against the three-level
// (socket-aware) one the paper lists as future work, on a dual-socket
// machine whose UPI link is a bottleneck.
func AblateLevels(sc Scale) {
	activeScale = sc.Name
	header("Ablation — two-level vs three-level hierarchy (dual-socket NUMA)")
	spec := sc.Shaheen
	spec.SocketsPerNode = 2
	spec.SocketBusBandwidth = spec.MemBusBandwidth * 0.6
	spec.UPIBandwidth = spec.MemBusBandwidth * 0.35
	fmt.Printf("%-10s%16s%16s%10s\n", "size", "two-level µs", "three-level µs", "gain")
	for _, m := range sc.Large {
		cfg := han.DefaultDecision(coll.Bcast, m)
		two := measureLevels(spec, m, cfg, false)
		three := measureLevels(spec, m, cfg, true)
		fmt.Printf("%-10s%16.1f%16.1f%9.2fx\n", han.SizeString(m), two*1e6, three*1e6, two/three)
	}
	fmt.Println("\nExpected shape: the socket-aware hierarchy wins once payloads saturate the")
	fmt.Println("cross-socket link (it crosses UPI once per node instead of once per remote rank).")
}

func measureLevels(spec cluster.Spec, m int, cfg han.Config, three bool) float64 {
	eng := sim.New()
	w := mpi.NewWorld(cluster.NewMachine(eng, spec), mpi.OpenMPI())
	h := han.New(w)
	var end sim.Time
	w.Start(func(p *mpi.Proc) {
		if three {
			h.Bcast3(p, mpi.Phantom(m), 0, cfg)
		} else {
			h.Bcast(p, mpi.Phantom(m), 0, cfg)
		}
		if p.Now() > end {
			end = p.Now()
		}
	})
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return float64(end)
}

// AblateOnline compares HAN's offline tuning against STAR-MPI-style online
// tuning over an application-like sequence of identical collective calls —
// the trade-off the paper's related-work section argues about: online
// tuning needs no installation-time benchmarking but pays a convergence
// period and per-call bookkeeping inside the application.
func AblateOnline(sc Scale) {
	activeScale = sc.Name
	header("Ablation — offline (HAN) vs online (STAR-MPI-style) tuning")
	spec := sc.Tuning
	m := 4 << 20
	const calls = 80

	// Offline: tune first (cost accounted separately), then run.
	env := autotune.NewEnv(spec, mpi.OpenMPI())
	res := autotune.RunSearch(env, sc.Space, []coll.Kind{coll.Bcast}, autotune.Combined, autotune.SearchOpts{Workers: expWorkers})
	offlinePer := runCallSeq(spec, m, calls, func(h *han.HAN, tuner *autotune.OnlineTuner, p *mpi.Proc) {
		h.Bcast(p, mpi.Phantom(m), 0, res.Table.Decide(coll.Bcast, m))
	})
	onlinePer := runCallSeq(spec, m, calls, func(h *han.HAN, tuner *autotune.OnlineTuner, p *mpi.Proc) {
		tuner.Bcast(p, mpi.Phantom(m), 0)
	})
	defaultPer := runCallSeq(spec, m, calls, func(h *han.HAN, tuner *autotune.OnlineTuner, p *mpi.Proc) {
		h.Bcast(p, mpi.Phantom(m), 0, han.Config{})
	})

	cum := func(d []float64, n int) float64 {
		s := 0.0
		for _, v := range d[:n] {
			s += v
		}
		return s
	}
	fmt.Printf("one-time offline tuning cost: %.2f s of machine time (%d runs)\n\n",
		res.Table.TuningCost, res.Table.Measurements)
	fmt.Printf("%-10s%16s%16s%16s\n", "calls", "offline ms", "online ms", "default ms")
	for _, n := range []int{5, 10, 20, 40, calls} {
		fmt.Printf("%-10d%16.2f%16.2f%16.2f\n", n, cum(offlinePer, n)*1e3, cum(onlinePer, n)*1e3, cum(defaultPer, n)*1e3)
	}
	last := 10
	fmt.Printf("\nsteady-state per-call (last %d calls): offline %.3f ms, online %.3f ms, default %.3f ms\n",
		last,
		(cum(offlinePer, calls)-cum(offlinePer, calls-last))/float64(last)*1e3,
		(cum(onlinePer, calls)-cum(onlinePer, calls-last))/float64(last)*1e3,
		(cum(defaultPer, calls)-cum(defaultPer, calls-last))/float64(last)*1e3)
	fmt.Println("\nExpected shape: online tuning converges to a good configuration but its trial")
	fmt.Println("period and per-call overhead cost the application; offline is flat from call one.")
}

// runCallSeq runs `calls` collective calls and returns per-call max-rank
// durations.
func runCallSeq(spec cluster.Spec, m, calls int, body func(h *han.HAN, tuner *autotune.OnlineTuner, p *mpi.Proc)) []float64 {
	eng := sim.New()
	w := mpi.NewWorld(cluster.NewMachine(eng, spec), mpi.OpenMPI())
	h := han.New(w)
	tuner := autotune.NewOnlineTuner(h, scales[activeScale].Space)
	durs := make([]float64, calls)
	w.Start(func(p *mpi.Proc) {
		c := w.World()
		for i := 0; i < calls; i++ {
			c.Barrier(p)
			t0 := p.Now()
			body(h, tuner, p)
			if d := float64(p.Now() - t0); d > durs[i] {
				durs[i] = d
			}
		}
	})
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return durs
}

// AblateGPU evaluates the GPU-level future work: HAN's pipelined GPU-aware
// broadcast against the naive stage-everything-then-broadcast approach.
func AblateGPU(sc Scale) {
	activeScale = sc.Name
	header("Ablation — GPU-aware pipelined bcast vs naive staging")
	spec := sc.Shaheen
	spec.GPUsPerNode = 4
	spec.GPUMemBandwidth = 700e9
	spec.NVLinkBandwidth = 50e9
	spec.PCIeBandwidth = 12e9
	fmt.Printf("%-10s%18s%18s%10s\n", "size", "pipelined µs", "naive staging µs", "gain")
	for _, m := range sc.Large {
		cfg := han.DefaultDecision(coll.Bcast, m)
		piped := runGPUWorld(spec, func(h *han.HAN, p *mpi.Proc) {
			h.BcastGPU(p, mpi.Phantom(m), 0, cfg)
		})
		naive := runGPUWorld(spec, func(h *han.HAN, p *mpi.Proc) {
			cuda := h.Mods.CUDA
			node := h.W.NodeComm(p.Node())
			if p.Rank == 0 {
				cuda.D2H(p, m)
			}
			h.Bcast(p, mpi.Phantom(m), 0, cfg)
			if h.W.Mach.IsNodeLeader(p.Rank) {
				cuda.H2D(p, m)
			}
			p.Wait(cuda.Ibcast(p, node, mpi.Phantom(m), 0, coll.Params{}))
		})
		fmt.Printf("%-10s%18.1f%18.1f%9.2fx\n", han.SizeString(m), piped*1e6, naive*1e6, naive/piped)
	}
	fmt.Println("\nExpected shape: integrating the GPU level into the task pipeline hides the")
	fmt.Println("PCIe stagings behind the inter-node transfers; the naive approach serialises them.")
}

func runGPUWorld(spec cluster.Spec, fn func(h *han.HAN, p *mpi.Proc)) float64 {
	eng := sim.New()
	w := mpi.NewWorld(cluster.NewMachine(eng, spec), mpi.OpenMPI())
	h := han.New(w)
	var end sim.Time
	w.Start(func(p *mpi.Proc) {
		fn(h, p)
		if p.Now() > end {
			end = p.Now()
		}
	})
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return float64(end)
}

// AblateNoise injects latency jitter (system noise) and compares how HAN
// and the flat default degrade — hierarchical, pipelined collectives absorb
// per-message noise better than long flat dependency chains.
func AblateNoise(sc Scale) {
	activeScale = sc.Name
	header("Ablation — robustness to system noise (latency jitter)")
	spec := sc.Shaheen
	// A latency-bound size: noise perturbs per-message latencies, so long
	// dependency chains feel it most.
	m := 16 << 10
	fmt.Printf("%-10s%14s%14s%16s%16s\n", "jitter", "HAN µs", "default µs", "HAN slowdown", "default slowdown")
	base := map[string]float64{}
	for _, jitter := range []float64{0, 1, 2, 4} {
		hanT := noisyBcast(spec, bench.HANSystem(nil), m, jitter)
		ompiT := noisyBcast(spec, bench.RivalSystem(rivals.OpenMPIDefault), m, jitter)
		if jitter == 0 {
			base["han"], base["ompi"] = hanT, ompiT
		}
		fmt.Printf("%-10.1f%14.1f%14.1f%15.2fx%15.2fx\n",
			jitter, hanT*1e6, ompiT*1e6, hanT/base["han"], ompiT/base["ompi"])
	}
	fmt.Println("\nExpected shape: the flat default is so bandwidth-bound at this size that")
	fmt.Println("latency jitter vanishes in it, while HAN's much faster latency-bound path")
	fmt.Println("visibly absorbs the noise — yet HAN stays far ahead in absolute terms at")
	fmt.Println("every noise level, so the tuning decisions remain valid on noisy systems.")
}

func noisyBcast(spec cluster.Spec, sys bench.System, m int, jitter float64) float64 {
	pers := sys.Pers
	pers.Jitter = jitter
	eng := sim.New()
	w := mpi.NewWorld(cluster.NewMachine(eng, spec), pers)
	w.Seed(42)
	ops := sys.Setup(w)
	const iters = 3
	var worst float64
	w.Start(func(p *mpi.Proc) {
		c := w.World()
		for it := 0; it <= iters; it++ {
			c.Barrier(p)
			t0 := p.Now()
			ops.Bcast(p, mpi.Phantom(m), 0)
			if d := float64(p.Now() - t0); it > 0 && d > worst {
				worst = d
			}
		}
	})
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return worst
}
