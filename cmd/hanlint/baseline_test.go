package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hanrepro/han/internal/lint"
)

func diag(pass, file string, line int, msg string) lint.Diagnostic {
	return lint.Diagnostic{
		Pass:    pass,
		Pos:     token.Position{Filename: file, Line: line, Column: 1},
		Message: msg,
	}
}

func TestNormalizeMessage(t *testing.T) {
	in := "nondeterministic value from time.Now (lib.go:7) flows into sim engine event time"
	want := "nondeterministic value from time.Now (lib.go) flows into sim engine event time"
	if got := normalizeMessage(in); got != want {
		t.Errorf("normalizeMessage = %q, want %q", got, want)
	}
	if got := normalizeMessage("plain message"); got != "plain message" {
		t.Errorf("normalizeMessage mangled a position-free message: %q", got)
	}
	if got := normalizeMessage("at a.go:12:3 and b.go:9"); got != "at a.go and b.go" {
		t.Errorf("normalizeMessage = %q", got)
	}
}

// TestBaselineRoundTrip writes a baseline from findings, reloads it, and
// checks it swallows the same findings — including when the embedded line
// numbers have drifted.
func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module x\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	d1 := diag("worldrand", filepath.Join(root, "a", "a.go"), 10, "rand.New constructs an RNG outside internal/mpi")
	d2 := diag("detflow", filepath.Join(root, "b", "b.go"), 5, "value from time.Now (lib.go:7) flows into sink")
	if err := writeBaseline([]lint.Diagnostic{d1, d2}, root); err != nil {
		t.Fatal(err)
	}
	entries, err := loadBaseline(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("loaded %d entries, want 2", len(entries))
	}

	// Same findings at drifted positions are still baselined.
	d1.Pos.Line = 99
	d2.Message = "value from time.Now (lib.go:123) flows into sink"
	if kept := applyBaseline([]lint.Diagnostic{d1, d2}, entries, root, false, nil); len(kept) != 0 {
		t.Errorf("baseline failed to swallow drifted findings: %v", kept)
	}

	// A finding the baseline does not know is kept.
	entries, _ = loadBaseline(root)
	d3 := diag("simtime", filepath.Join(root, "c.go"), 1, "wall-clock time.Now in simulation code")
	if kept := applyBaseline([]lint.Diagnostic{d1, d2, d3}, entries, root, false, nil); len(kept) != 1 || kept[0].Pass != "simtime" {
		t.Errorf("applyBaseline kept %v, want just the simtime finding", kept)
	}
}

// TestBaselineRatchet checks the one-way contract: when accepted debt
// disappears from the tree, a ratcheting run reports the overcounting
// entry instead of silently letting it linger.
func TestBaselineRatchet(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module x\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	d := diag("worldrand", filepath.Join(root, "a.go"), 3, "rand.New constructs an RNG outside internal/mpi")
	if err := writeBaseline([]lint.Diagnostic{d, d}, root); err != nil { // count 2
		t.Fatal(err)
	}
	entries, err := loadBaseline(root)
	if err != nil {
		t.Fatal(err)
	}
	kept := applyBaseline([]lint.Diagnostic{d}, entries, root, true, nil) // only 1 remains
	if len(kept) != 1 || kept[0].Pass != "baseline" {
		t.Fatalf("ratchet produced %v, want one synthetic baseline finding", kept)
	}
	if !strings.Contains(kept[0].Message, "regenerate with -write-baseline") {
		t.Errorf("ratchet message lacks the remedy: %q", kept[0].Message)
	}
	// Without ratcheting (per-unit vet mode) the stale entry is silent.
	entries, _ = loadBaseline(root)
	if kept := applyBaseline([]lint.Diagnostic{d}, entries, root, false, nil); len(kept) != 0 {
		t.Errorf("non-ratchet run reported %v, want nothing", kept)
	}
	// A ratcheting run scoped to packages that do not include the entry's
	// directory must not declare it stale — it never looked there.
	entries, _ = loadBaseline(root)
	if kept := applyBaseline(nil, entries, root, true, map[string]bool{"other": true}); len(kept) != 0 {
		t.Errorf("out-of-scope ratchet reported %v, want nothing", kept)
	}
	// ...while a run that does cover the directory reports it. The entry
	// file "a.go" sits at the module root, dir ".".
	entries, _ = loadBaseline(root)
	if kept := applyBaseline(nil, entries, root, true, map[string]bool{".": true}); len(kept) != 1 {
		t.Errorf("in-scope ratchet reported %v, want one stale entry", kept)
	}
}

// TestSARIFShape unmarshals a written log and checks the fields code
// scanning ingests: version, driver name, rule IDs for every pass, and
// one physical location per result. An empty run must still be valid.
func TestSARIFShape(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "lint.sarif")
	d := diag("detflow", filepath.Join(root, "x.go"), 7, "nondeterministic value flows into sink")
	if err := writeSARIF(path, []lint.Diagnostic{d}, root); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF does not round-trip: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q with %d runs, want 2.1.0 with 1", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "hanlint" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	rules := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		rules[r.ID] = true
	}
	for _, a := range lint.All() {
		if !rules[a.Name] {
			t.Errorf("no SARIF rule for pass %q", a.Name)
		}
	}
	if len(run.Results) != 1 {
		t.Fatalf("%d results, want 1", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "detflow" || res.Locations[0].PhysicalLocation.ArtifactLocation.URI != "x.go" {
		t.Errorf("result = %+v", res)
	}
	if res.Locations[0].PhysicalLocation.Region.StartLine != 7 {
		t.Errorf("start line = %d, want 7", res.Locations[0].PhysicalLocation.Region.StartLine)
	}

	// Empty diagnostics still produce a parseable log with a results array.
	if err := writeSARIF(path, nil, root); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatal(err)
	}
	if log.Runs[0].Results == nil {
		t.Error("empty run serialized results as null, want []")
	}
}
