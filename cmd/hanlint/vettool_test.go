package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildHanlint compiles the hanlint binary into a temp dir so the tests
// can hand it to `go vet -vettool=`.
func buildHanlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hanlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building hanlint: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a throwaway single-package module (no deps beyond
// the standard library, so no network) and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func goVet(t *testing.T, dir, bin string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestVettoolReportsTestFiles proves the unitchecker protocol analyzes
// _test.go files: go vet hands hanlint the test variant of the package,
// and simtime/worldrand diagnostics anchored in the test file come back
// through vet's exit status and output.
func TestVettoolReportsTestFiles(t *testing.T) {
	bin := buildHanlint(t)
	dir := writeModule(t, map[string]string{
		"go.mod":  "module example.com/vfix\n\ngo 1.22\n",
		"vfix.go": "// Package vfix is a vet-protocol fixture.\npackage vfix\n",
		"vfix_test.go": `package vfix

import (
	"math/rand"
	"testing"
	"time"
)

func TestViolations(t *testing.T) {
	if time.Now().IsZero() {
		t.Fatal("unreachable")
	}
	if rand.Intn(2) > 1 {
		t.Fatal("unreachable")
	}
}
`,
	})

	out, err := goVet(t, dir, bin)
	if err == nil {
		t.Fatalf("go vet succeeded; want findings in the _test.go file\n%s", out)
	}
	for _, want := range []string{
		"vfix_test.go:10:", // the time.Now call
		"simtime: wall-clock time.Now",
		"vfix_test.go:13:", // the rand.Intn call
		"worldrand: rand.Intn draws from the process-global source",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("go vet output missing %q:\n%s", want, out)
		}
	}
}

// TestVettoolCleanModule is the control: a module whose test file plays
// by the rules vets clean, so the failures above are the diagnostics and
// not protocol breakage.
func TestVettoolCleanModule(t *testing.T) {
	bin := buildHanlint(t)
	dir := writeModule(t, map[string]string{
		"go.mod":  "module example.com/vclean\n\ngo 1.22\n",
		"clean.go": "// Package vclean is a vet-protocol fixture.\npackage vclean\n\n// Double doubles.\nfunc Double(x int) int { return 2 * x }\n",
		"clean_test.go": `package vclean

import (
	"math/rand"
	"testing"
)

func TestDouble(t *testing.T) {
	// Constructed, seeded RNGs are fine in tests; only the global
	// source and wall clocks are not.
	rng := rand.New(rand.NewSource(1))
	if Double(rng.Intn(3)) > 6 {
		t.Fatal("unreachable")
	}
}
`,
	})

	if out, err := goVet(t, dir, bin); err != nil {
		t.Fatalf("go vet on clean module failed: %v\n%s", err, out)
	}
}
