// Command hanlint runs the repository's invariant analyzers (package
// internal/lint) over Go packages. It has two modes:
//
//   - Standalone: `hanlint ./internal/...` resolves the patterns with `go
//     list`, type-checks each package from source, and prints violations.
//     Module-local dependencies are analyzed first so interprocedural
//     passes (detflow, metriclabel) see whole-program facts. It must run
//     from inside the repository (module resolution is rooted at the
//     working directory).
//
//   - Vet tool: `go vet -vettool=$(command -v hanlint) ./...` — the go
//     command invokes hanlint once per package with a *.cfg file
//     describing the unit (the x/tools "unitchecker" protocol, implemented
//     here against the standard library). hanlint answers the -V=full and
//     -flags probes, type-checks the unit against the export data the go
//     command already built, threads interprocedural facts through the
//     protocol's .vetx files, and reports findings in vet's format.
//
// Findings accepted as pre-existing debt live in .hanlint-baseline.json
// at the module root; the file is a ratchet (regenerate it only smaller,
// with -write-baseline). -json and -sarif render machine-readable output;
// -allows prints the //hanlint:allow inventory.
//
// Exit status: 0 clean, 1 operational error, 2 violations found.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/hanrepro/han/internal/lint"
)

func main() {
	// Vet protocol probes must be answered before normal flag parsing.
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			// Stable one-line version string; the go command folds it into
			// the build cache key for vet results. Bump the buildID when
			// analyzer semantics change so stale cached verdicts (and
			// factless .vetx files from older binaries) are invalidated.
			fmt.Println("hanlint version devel buildID=hanlint-v3")
			return
		case "-flags", "--flags":
			// No tool-specific flags are exposed through go vet.
			fmt.Println("[]")
			return
		}
	}

	only := flag.String("only", "", "comma-separated subset of passes to run")
	list := flag.Bool("list", false, "list the available passes and exit")
	jsonOut := flag.Bool("json", false, "print diagnostics as JSON on stdout")
	sarifOut := flag.String("sarif", "", "write a SARIF 2.1.0 log to this file (written even when clean)")
	noBaseline := flag.Bool("no-baseline", false, "ignore .hanlint-baseline.json and report everything")
	writeBase := flag.Bool("write-baseline", false, "regenerate .hanlint-baseline.json from current findings and exit (run over the full lint tree: entries for packages outside the patterns are dropped)")
	allows := flag.Bool("allows", false, "list every //hanlint:allow annotation (file:line, pass, reason) and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hanlint [-only pass,pass] [-json] [-sarif file] [-write-baseline] [-allows] packages...\n")
		fmt.Fprintf(os.Stderr, "       go vet -vettool=$(command -v hanlint) packages...\n\n")
		fmt.Fprintf(os.Stderr, "passes:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hanlint:", err)
		os.Exit(1)
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(1)
	}

	// A single *.cfg argument means the go command is driving us as a vet
	// tool, one package unit per invocation.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		diags, err := runUnit(args[0], analyzers)
		exitPlain(diags, err)
	}

	if *allows {
		if err := runAllows(args); err != nil {
			fmt.Fprintln(os.Stderr, "hanlint:", err)
			os.Exit(1)
		}
		return
	}

	diags, targetDirs, err := runStandalone(args, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hanlint:", err)
		os.Exit(1)
	}
	root := moduleRoot(".")

	if *writeBase {
		if err := writeBaseline(diags, root); err != nil {
			fmt.Fprintln(os.Stderr, "hanlint:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hanlint: baseline regenerated with %d finding(s)\n", len(diags))
		return
	}
	if !*noBaseline {
		entries, err := loadBaseline(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hanlint:", err)
			os.Exit(1)
		}
		covered := make(map[string]bool, len(targetDirs))
		for _, dir := range targetDirs {
			covered[relFile(root, dir)] = true
		}
		diags = applyBaseline(diags, entries, root, true, covered)
	}
	if *sarifOut != "" {
		if err := writeSARIF(*sarifOut, diags, root); err != nil {
			fmt.Fprintln(os.Stderr, "hanlint:", err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		if err := printJSON(diags, root); err != nil {
			fmt.Fprintln(os.Stderr, "hanlint:", err)
			os.Exit(1)
		}
		if len(diags) > 0 {
			os.Exit(2)
		}
		return
	}
	exitPlain(diags, nil)
}

func exitPlain(diags []lint.Diagnostic, err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hanlint:", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	if only == "" {
		return lint.All(), nil
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a := lint.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown pass %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
