package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"github.com/hanrepro/han/internal/lint"
)

// baselineName is the checked-in ratchet file at the module root.
const baselineName = ".hanlint-baseline.json"

// baselineEntry is one accepted pre-existing finding class. Messages are
// stored with position suffixes normalized away so line-number churn does
// not invalidate the baseline; count is the number of identical findings
// accepted, and the ratchet reports when the tree has FEWER than count
// (the entry must then be shrunk — the debt only burns down).
type baselineEntry struct {
	Pass    string `json:"pass"`
	File    string `json:"file"` // module-root-relative, forward slashes
	Message string `json:"message"`
	Count   int    `json:"count"`
}

type baselineFile struct {
	// Comment documents the ratchet contract inside the JSON itself.
	Comment string          `json:"comment,omitempty"`
	Entries []baselineEntry `json:"entries"`
}

// posRe matches the file:line(:col) position fragments embedded in
// diagnostic messages (e.g. "time.Now (search.go:142)").
var posRe = regexp.MustCompile(`\.go:\d+(:\d+)?`)

func normalizeMessage(msg string) string {
	return posRe.ReplaceAllString(msg, ".go")
}

func baselineKey(pass, relFile, msg string) string {
	return pass + "\x00" + relFile + "\x00" + normalizeMessage(msg)
}

// loadBaseline reads the baseline at root, keyed for matching. A missing
// file is an empty baseline.
func loadBaseline(root string) (map[string]*baselineEntry, error) {
	data, err := os.ReadFile(filepath.Join(root, baselineName))
	if os.IsNotExist(err) {
		return map[string]*baselineEntry{}, nil
	}
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", baselineName, err)
	}
	out := make(map[string]*baselineEntry, len(bf.Entries))
	for i := range bf.Entries {
		e := bf.Entries[i]
		out[baselineKey(e.Pass, e.File, e.Message)] = &bf.Entries[i]
	}
	return out, nil
}

// relFile renders a diagnostic's filename relative to the module root in
// slash form; paths outside the root pass through unchanged.
func relFile(root, filename string) string {
	if root == "" {
		return filepath.ToSlash(filename)
	}
	abs := filename
	if !filepath.IsAbs(abs) {
		if wd, err := os.Getwd(); err == nil {
			abs = filepath.Join(wd, abs)
		}
	}
	if rel, err := filepath.Rel(root, abs); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// applyBaseline drops baselined diagnostics, decrementing entry counts.
// With ratchet true (standalone mode, where whole packages were analyzed
// in one process), entries left with a positive count are reported as
// synthetic "baseline" findings: the accepted debt shrank, so the file
// must be regenerated smaller (-write-baseline) — it never grows back.
// covered, when non-nil, limits ratchet reports to entries whose file
// lives in an analyzed package directory (module-root-relative); a run
// over a subtree must not declare entries it never looked at stale.
func applyBaseline(diags []lint.Diagnostic, entries map[string]*baselineEntry, root string, ratchet bool, covered map[string]bool) []lint.Diagnostic {
	if len(entries) == 0 {
		return diags
	}
	remaining := make(map[string]int, len(entries))
	for k, e := range entries {
		remaining[k] = e.Count
	}
	kept := diags[:0]
	for _, d := range diags {
		k := baselineKey(d.Pass, relFile(root, d.Pos.Filename), d.Message)
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		kept = append(kept, d)
	}
	if !ratchet {
		return kept
	}
	var stale []string
	for k, n := range remaining {
		if n <= 0 {
			continue
		}
		if covered != nil && !covered[path.Dir(entries[k].File)] {
			continue
		}
		stale = append(stale, k)
	}
	sort.Strings(stale)
	for _, k := range stale {
		e := entries[k]
		kept = append(kept, lint.Diagnostic{
			Pass: "baseline",
			Pos:  tokenPosition(filepath.Join(root, baselineName)),
			Message: fmt.Sprintf(
				"baseline overcounts %s findings in %s (%q): %d accepted, fewer remain; "+
					"regenerate with -write-baseline so the debt ratchets down",
				e.Pass, e.File, e.Message, e.Count),
		})
	}
	return kept
}

// writeBaseline regenerates the ratchet file from the current findings.
func writeBaseline(diags []lint.Diagnostic, root string) error {
	counts := map[string]*baselineEntry{}
	for _, d := range diags {
		if d.Pass == "baseline" {
			continue
		}
		rel := relFile(root, d.Pos.Filename)
		k := baselineKey(d.Pass, rel, d.Message)
		if e, ok := counts[k]; ok {
			e.Count++
			continue
		}
		counts[k] = &baselineEntry{
			Pass: d.Pass, File: rel, Message: normalizeMessage(d.Message), Count: 1,
		}
	}
	entries := make([]baselineEntry, 0, len(counts))
	for _, e := range counts {
		entries = append(entries, *e)
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Message < b.Message
	})
	bf := baselineFile{
		Comment: "hanlint ratchet: accepted pre-existing findings. Entries may only shrink; " +
			"regenerate with `hanlint -write-baseline <patterns>` after burning debt down.",
		Entries: entries,
	}
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(root, baselineName), append(data, '\n'), 0o666)
}

// moduleRoot walks up from dir to the enclosing go.mod, or returns "".
func moduleRoot(dir string) string {
	if !filepath.IsAbs(dir) {
		if wd, err := os.Getwd(); err == nil {
			dir = filepath.Join(wd, dir)
		}
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}
