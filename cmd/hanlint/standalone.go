package main

import (
	"bytes"
	"fmt"
	"os/exec"
	"strings"

	"github.com/hanrepro/han/internal/lint"
)

// runStandalone resolves go-list patterns to (import path, dir) pairs and
// analyzes each package from source.
func runStandalone(patterns []string, analyzers []*lint.Analyzer) ([]lint.Diagnostic, error) {
	cmd := exec.Command("go", append([]string{"list", "-f", "{{.ImportPath}}\t{{.Dir}}"}, patterns...)...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	loader := lint.NewLoader()
	var diags []lint.Diagnostic
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if line == "" {
			continue
		}
		path, dir, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("unexpected go list output %q", line)
		}
		pkg, err := loader.Load(path, dir)
		if err != nil {
			return nil, err
		}
		diags = append(diags, lint.RunAnalyzers(pkg, analyzers)...)
	}
	return diags, nil
}
