package main

import (
	"bytes"
	"fmt"
	"os/exec"
	"sort"
	"strings"

	"github.com/hanrepro/han/internal/lint"
)

// listedPkg is one `go list` row.
type listedPkg struct {
	path    string
	dir     string
	module  bool // inside a module (not GOROOT)
	imports []string
}

// listPackages resolves patterns. With deps true it includes the
// packages' transitive dependencies; `go list -deps` emits them in
// dependency order (dependencies before dependents), which is exactly
// the order the facts layer needs.
func listPackages(patterns []string, deps bool) ([]listedPkg, error) {
	args := []string{"list", "-f", "{{.ImportPath}}\t{{.Dir}}\t{{if .Module}}1{{else}}0{{end}}\t{{range .Imports}}{{.}} {{end}}"}
	if deps {
		args = append(args, "-deps")
	}
	cmd := exec.Command("go", append(args, patterns...)...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []listedPkg
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 4)
		if len(parts) < 3 {
			return nil, fmt.Errorf("unexpected go list output %q", line)
		}
		p := listedPkg{path: parts[0], dir: parts[1], module: parts[2] == "1"}
		if len(parts) == 4 {
			p.imports = strings.Fields(parts[3])
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// runStandalone analyzes the packages matching patterns from source.
// Module-local dependencies outside the patterns are analyzed too — for
// their facts only, so interprocedural passes see the whole program —
// but diagnostics are reported only for the pattern-matched packages.
// The second result is the set of target package directories (absolute),
// which scopes the baseline ratchet to what was actually analyzed.
func runStandalone(patterns []string, analyzers []*lint.Analyzer) ([]lint.Diagnostic, []string, error) {
	targets, err := listPackages(patterns, false)
	if err != nil {
		return nil, nil, err
	}
	targetSet := make(map[string]bool, len(targets))
	var targetDirs []string
	for _, p := range targets {
		targetSet[p.path] = true
		targetDirs = append(targetDirs, p.dir)
	}
	all, err := listPackages(patterns, true)
	if err != nil {
		return nil, nil, err
	}

	loader := lint.NewLoader()
	factsByPath := make(map[string]lint.Facts)
	var diags []lint.Diagnostic
	for _, p := range all {
		if !p.module {
			continue // stdlib: intrinsic models cover it
		}
		pkg, err := loader.Load(p.path, p.dir)
		if err != nil {
			return nil, nil, err
		}
		deps := make(map[string]lint.Facts)
		for _, imp := range p.imports {
			if f, ok := factsByPath[imp]; ok {
				deps[imp] = f
			}
		}
		ds, facts := lint.RunAnalyzersFacts(pkg, analyzers, deps)
		factsByPath[p.path] = facts
		if targetSet[p.path] {
			diags = append(diags, ds...)
		}
	}
	return diags, targetDirs, nil
}

// runAllows prints every //hanlint:allow annotation in the matched
// packages — the reviewed-debt inventory — as file:line, pass, reason.
func runAllows(patterns []string) error {
	targets, err := listPackages(patterns, false)
	if err != nil {
		return err
	}
	targetSet := make(map[string]bool, len(targets))
	for _, p := range targets {
		targetSet[p.path] = true
	}
	// Load in dependency order (like runStandalone) so every module-local
	// import is served from the loader's cache; mixing cached packages
	// with the fallback source importer's own instances breaks type
	// identity.
	all, err := listPackages(patterns, true)
	if err != nil {
		return err
	}
	root := moduleRoot(".")
	loader := lint.NewLoader()
	var rows []lint.Allow
	for _, p := range all {
		if !p.module {
			continue
		}
		pkg, err := loader.Load(p.path, p.dir)
		if err != nil {
			return err
		}
		if targetSet[p.path] {
			rows = append(rows, lint.AllowAnnotations(pkg)...)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i].Pos, rows[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, al := range rows {
		fmt.Printf("%s:%d\t%s\t%s\n", relFile(root, al.Pos.Filename), al.Pos.Line, al.Pass, al.Reason)
	}
	fmt.Printf("# %d allow annotation(s)\n", len(rows))
	return nil
}
