package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"

	"github.com/hanrepro/han/internal/lint"
)

func tokenPosition(file string) token.Position {
	return token.Position{Filename: file, Line: 1}
}

// jsonDiag is the -json output record.
type jsonDiag struct {
	Pass    string `json:"pass"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

func printJSON(diags []lint.Diagnostic, root string) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			Pass:    d.Pass,
			File:    relFile(root, d.Pos.Filename),
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// --- SARIF 2.1.0, the minimal subset GitHub code scanning ingests ---

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID   string    `json:"id"`
	Desc sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders the diagnostics as a SARIF log at path. An empty
// diagnostic set still writes a valid log (CI uploads it unconditionally).
func writeSARIF(path string, diags []lint.Diagnostic, root string) error {
	rules := []sarifRule{
		{ID: "allow", Desc: sarifText{Text: "malformed or stale //hanlint:allow annotation"}},
		{ID: "baseline", Desc: sarifText{Text: "baseline ratchet: accepted debt shrank, regenerate the baseline"}},
	}
	for _, a := range lint.All() {
		rules = append(rules, sarifRule{ID: a.Name, Desc: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		line := d.Pos.Line
		if line < 1 {
			line = 1
		}
		results = append(results, sarifResult{
			RuleID:  d.Pass,
			Level:   "warning",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relFile(root, d.Pos.Filename)},
					Region:           sarifRegion{StartLine: line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "hanlint", Rules: rules}}, Results: results}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o666); err != nil {
		return fmt.Errorf("writing SARIF %s: %w", path, err)
	}
	return nil
}
