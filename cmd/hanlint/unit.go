package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/hanrepro/han/internal/lint"
)

// unitConfig mirrors the JSON the go command writes for vet tools (the
// x/tools unitchecker.Config schema). Only the fields hanlint needs are
// decoded; unknown fields are ignored.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string // dep import path -> .vetx facts file
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one package unit on behalf of `go vet -vettool=`.
//
// Facts ride the protocol's .vetx files: PackageVetx names the files the
// dependencies wrote, VetxOutput is where this unit's facts go. Units
// visited only for their facts (VetxOnly) are still fully analyzed —
// dependents need their summaries — but report nothing. Standard-library
// units write empty facts: detflow's intrinsic source/sink tables model
// the stdlib, so type-checking it here would be pure cost.
func runUnit(cfgFile string, analyzers []*lint.Analyzer) ([]lint.Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", cfgFile, err)
	}
	isStd := cfg.Standard[cfg.ImportPath] || !strings.Contains(firstPathElem(cfg.ImportPath), ".")
	if isStd {
		return nil, writeFacts(cfg.VetxOutput, lint.Facts{})
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, writeFacts(cfg.VetxOutput, lint.Facts{})
			}
			return nil, err
		}
		files = append(files, f)
	}
	sort.Slice(files, func(i, j int) bool {
		return fset.Position(files[i].Pos()).Filename < fset.Position(files[j].Pos()).Filename
	})

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tconf := types.Config{Importer: imp}
	if v, ok := strings.CutPrefix(cfg.GoVersion, "go"); ok {
		// types.Config.GoVersion wants the "go1.x" form; cfg carries it
		// already prefixed on modern toolchains.
		tconf.GoVersion = "go" + v
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, writeFacts(cfg.VetxOutput, lint.Facts{})
		}
		return nil, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}
	pkg := &lint.Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}

	deps := readDepFacts(cfg)
	diags, facts := lint.RunAnalyzersFacts(pkg, analyzers, deps)
	if err := writeFacts(cfg.VetxOutput, facts); err != nil {
		return nil, err
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	// The baseline lives at the enclosing module root; per-unit filtering
	// cannot ratchet (no unit sees the whole tree), so stale entries are
	// only reported by standalone runs.
	if root := moduleRoot(cfg.Dir); root != "" {
		entries, err := loadBaseline(root)
		if err != nil {
			return nil, err
		}
		diags = applyBaseline(diags, entries, root, false, nil)
	}
	return diags, nil
}

// readDepFacts decodes the dependencies' .vetx files. Absent or
// malformed files degrade to no facts — the analyzers' intrinsic models
// still apply.
func readDepFacts(cfg unitConfig) map[string]lint.Facts {
	deps := make(map[string]lint.Facts, len(cfg.PackageVetx))
	for path, file := range cfg.PackageVetx {
		blob, err := os.ReadFile(file)
		if err != nil || len(blob) == 0 {
			continue
		}
		var f lint.Facts
		if json.Unmarshal(blob, &f) != nil {
			continue
		}
		deps[path] = f
	}
	return deps
}

// writeFacts serializes a unit's facts to its VetxOutput. The go command
// demands the file exist even when empty.
func writeFacts(path string, facts lint.Facts) error {
	if path == "" {
		return nil
	}
	data, err := json.Marshal(facts)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}

func firstPathElem(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}
