package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/hanrepro/han/internal/lint"
)

// unitConfig mirrors the JSON the go command writes for vet tools (the
// x/tools unitchecker.Config schema). Only the fields hanlint needs are
// decoded; unknown fields are ignored.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one package unit on behalf of `go vet -vettool=`.
func runUnit(cfgFile string, analyzers []*lint.Analyzer) ([]lint.Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", cfgFile, err)
	}
	// The go command expects a facts file regardless of findings; hanlint
	// keeps no cross-package facts, so an empty one satisfies the cache.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}
	sort.Slice(files, func(i, j int) bool {
		return fset.Position(files[i].Pos()).Filename < fset.Position(files[j].Pos()).Filename
	})

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tconf := types.Config{Importer: imp}
	if v, ok := strings.CutPrefix(cfg.GoVersion, "go"); ok {
		// types.Config.GoVersion wants the "go1.x" form; cfg carries it
		// already prefixed on modern toolchains.
		tconf.GoVersion = "go" + v
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}
	pkg := &lint.Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}
	return lint.RunAnalyzers(pkg, analyzers), nil
}
