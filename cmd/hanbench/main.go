// Command hanbench is an IMB-style collective benchmark for the simulated
// clusters: it sweeps message sizes for a chosen collective and prints the
// max-across-ranks latency per size for one or more MPI systems.
//
// Usage:
//
//	hanbench -op bcast -machine shaheen -nodes 8 -ppn 8 -systems HAN,OpenMPI-default,CrayMPI
//	hanbench -op allreduce -machine stampede -sizes 1024,1048576 -table tuning.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/hanrepro/han/internal/arena"
	"github.com/hanrepro/han/internal/autotune"
	"github.com/hanrepro/han/internal/bench"
	"github.com/hanrepro/han/internal/cluster"
	"github.com/hanrepro/han/internal/coll"
	"github.com/hanrepro/han/internal/fault"
	"github.com/hanrepro/han/internal/flow"
	"github.com/hanrepro/han/internal/han"
	"github.com/hanrepro/han/internal/metrics"
	"github.com/hanrepro/han/internal/rivals"
	"github.com/hanrepro/han/internal/serve"
)

func main() {
	op := flag.String("op", "bcast", "collective: bcast, allreduce, reduce, gather, allgather, scatter")
	machine := flag.String("machine", "shaheen", "machine preset: "+strings.Join(cluster.PresetNames(), ", "))
	nodes := flag.Int("nodes", 0, "override node count")
	ppn := flag.Int("ppn", 0, "override processes per node")
	systemsFlag := flag.String("systems", "HAN,OpenMPI-default", "comma-separated systems: HAN, OpenMPI-default, CrayMPI, IntelMPI, MVAPICH2")
	sizesFlag := flag.String("sizes", "", "comma-separated message sizes in bytes (default: IMB small+large sweep)")
	tablePath := flag.String("table", "", "autotuning lookup table (JSON) to drive HAN's decisions")
	refAlloc := flag.Bool("refalloc", false, "use the from-scratch reference rate allocator instead of the incremental one (A/B debugging; results are bit-identical, only wall-clock differs)")
	refPool := flag.Bool("refpool", false, "disable arena pooling of flows and P2P records (A/B debugging; results are bit-identical, only wall-clock and allocation volume differ)")
	scaleTier := flag.Bool("scale", false, "run the payload-free phantom scale tier instead of the IMB sweep: one HAN broadcast of the first size, no barriers, with memory accounting (use -nodes/-ppn to set the world; default 3072x32 = 98304 ranks)")
	groups := flag.Int("groups", 0, "partition the -scale run into this many node groups for the parallel engine (must divide the node count; 0 = unpartitioned serial scale tier)")
	parallelSim := flag.String("parallel-sim", "oracle", "engine for the partitioned -scale run: 'oracle' (all partitions on one shared serial engine, the bit-identical reference) or a host worker count for the windowed parallel engine (0 = GOMAXPROCS); sim results are identical for every value")
	faultsFlag := flag.String("faults", "", "fault plan to inject: a built-in name ("+strings.Join(fault.BuiltinNames(), ", ")+") or @path.json to load a plan from disk")
	seed := flag.Int64("seed", 0, "RNG seed for jitter and fault draws (0 = library default); the (seed, faults) pair fully determines the run")
	metricsOut := flag.String("metrics", "", "write an OpenMetrics text export of the sweep's runtime counters to this file (docs/OBSERVABILITY.md)")
	workers := flag.Int("workers", 0, "concurrent per-system benchmark workers (0 = GOMAXPROCS; forced to 1 with -metrics); results are identical for any value")
	serveMode := flag.Bool("serve", false, "benchmark the tuning-decision service (internal/serve) instead of the IMB sweep: closed-loop clients issue decide queries and the report gives QPS and latency percentiles")
	clients := flag.Int("clients", 4, "with -serve: concurrent closed-loop load clients")
	qps := flag.Float64("qps", 0, "with -serve: aggregate target query rate (0 = unthrottled)")
	duration := flag.Duration("duration", 2*time.Second, "with -serve: load run length")
	addr := flag.String("addr", "", "with -serve: dial a running hand server at this TCP address instead of benchmarking an in-process loopback server")
	serveOut := flag.String("serve-out", "", "with -serve: also write the report as JSON to this file (BENCH_serve.json format)")
	flag.Parse()

	if *refAlloc {
		flow.DefaultAllocator = flow.Reference
	}
	if *refPool {
		arena.Default = false
	}

	spec, err := cluster.ByName(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hanbench:", err)
		os.Exit(2)
	}
	if *scaleTier {
		spec = bench.ScaleSpec(bench.ScaleNodes)
	}
	if *nodes > 0 {
		spec.Nodes = *nodes
	}
	if *ppn > 0 {
		spec.PPN = *ppn
	}

	kind, err := coll.KindByName(*op)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hanbench:", err)
		os.Exit(2)
	}

	sizes := append(bench.SmallSizes(), bench.LargeSizes()...)
	if *sizesFlag != "" {
		sizes = nil
		for _, s := range strings.Split(*sizesFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "hanbench: bad size %q\n", s)
				os.Exit(2)
			}
			sizes = append(sizes, v)
		}
	}

	if *serveMode {
		var querySizes []int
		if *sizesFlag != "" {
			querySizes = sizes
		}
		runServeBench(serveBenchOpts{
			machine: *machine, spec: spec, tablePath: *tablePath,
			clients: *clients, qps: *qps, duration: *duration,
			addr: *addr, sizes: querySizes,
			metricsOut: *metricsOut, jsonOut: *serveOut,
		})
		return
	}

	var faultPlan *fault.Plan
	if *faultsFlag != "" {
		var plan fault.Plan
		var err error
		if path, ok := strings.CutPrefix(*faultsFlag, "@"); ok {
			plan, err = fault.LoadFile(path)
		} else {
			plan, err = fault.Builtin(*faultsFlag)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "hanbench:", err)
			os.Exit(2)
		}
		faultPlan = &plan
	}

	if *scaleTier {
		size := 256 << 10
		if *sizesFlag != "" {
			size = sizes[0]
		}
		if kind != coll.Bcast {
			fmt.Fprintln(os.Stderr, "hanbench: the scale tier runs -op bcast only")
			os.Exit(2)
		}
		if *groups > 0 {
			opts := bench.ParallelOpts{Groups: *groups, Seed: *seed, Faults: faultPlan}
			switch *parallelSim {
			case "oracle":
				opts.Oracle = true
			default:
				w, err := strconv.Atoi(*parallelSim)
				if err != nil || w < 0 {
					fmt.Fprintf(os.Stderr, "hanbench: -parallel-sim must be 'oracle' or a non-negative worker count, got %q\n", *parallelSim)
					os.Exit(2)
				}
				opts.Workers = w
			}
			res, err := bench.ParallelScaleBcast(spec, size, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hanbench:", err)
				os.Exit(1)
			}
			engine := "oracle (shared serial engine)"
			if !opts.Oracle {
				engine = fmt.Sprintf("windowed parallel engine, %d host worker(s)", res.Workers)
			}
			fmt.Printf("partitioned scale tier: bcast %s on %s (%d nodes x %d ppn), %s\n%v\n",
				han.SizeString(size), spec.Name, spec.Nodes, spec.PPN, engine, res)
			for _, e := range res.Errors {
				fmt.Println("  rank error:", e)
			}
			return
		}
		res, err := bench.ScaleBcast(spec, size, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hanbench:", err)
			os.Exit(1)
		}
		fmt.Printf("scale tier: bcast %s on %s (%d nodes x %d ppn)\n%v\n",
			han.SizeString(size), spec.Name, spec.Nodes, spec.PPN, res)
		return
	}

	var decide han.DecisionFunc
	if *tablePath != "" {
		table, err := autotune.Load(*tablePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hanbench:", err)
			os.Exit(1)
		}
		decide = table.DecisionFunc()
	}

	var opts bench.IMBOpts
	opts.Seed = *seed
	opts.Faults = faultPlan
	if *metricsOut != "" {
		opts.Metrics = metrics.New()
	}

	var systems []bench.System
	for _, name := range strings.Split(*systemsFlag, ",") {
		sys, err := systemByName(strings.TrimSpace(name), decide)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hanbench:", err)
			os.Exit(2)
		}
		systems = append(systems, sys)
	}

	names := make([]string, len(systems))
	for i, sys := range systems {
		names[i] = sys.Name
	}
	points := bench.IMBAll(spec, systems, kind, sizes, opts, *workers)
	title := fmt.Sprintf("%s on %s (%d nodes x %d ppn = %d processes), latency in µs",
		*op, spec.Name, spec.Nodes, spec.PPN, spec.Ranks())
	if *faultsFlag != "" {
		title += fmt.Sprintf(", fault plan %q seed %d", *faultsFlag, *seed)
	}
	fmt.Print(bench.FormatTable(title, sizes, names, points))

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hanbench:", err)
			os.Exit(1)
		}
		// The sweep spans one world per system, each with its own virtual
		// clock, so samples are stamped 0 rather than any single end time.
		err = opts.Metrics.WriteOpenMetrics(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "hanbench:", err)
			os.Exit(1)
		}
	}
}

type serveBenchOpts struct {
	machine    string
	spec       cluster.Spec
	tablePath  string
	clients    int
	qps        float64
	duration   time.Duration
	addr       string
	sizes      []int
	metricsOut string
	jsonOut    string
}

// syntheticTable builds an untuned decision table for spec from HAN's
// static heuristics — one entry per (kind, IMB size). It stands in for a
// real autotuner table so the serving benchmark needs no tuning sweep.
func syntheticTable(spec cluster.Spec, kinds []coll.Kind) *autotune.Table {
	t := &autotune.Table{Machine: spec.Name, Method: "default-decision"}
	for _, k := range kinds {
		for _, m := range append(bench.SmallSizes(), bench.LargeSizes()...) {
			t.Entries = append(t.Entries, autotune.Entry{
				In:  autotune.Input{N: spec.Nodes, P: spec.PPN, M: m, T: k},
				Cfg: han.DefaultDecision(k, m),
			})
		}
	}
	return t
}

// runServeBench drives the closed-loop QPS/latency harness against the
// tuning-decision service: an in-process loopback server by default, or a
// remote hand server with -addr.
func runServeBench(o serveBenchOpts) {
	kinds := []coll.Kind{coll.Bcast, coll.Allreduce}
	load := serve.LoadOpts{
		Clients:  o.clients,
		QPS:      o.qps,
		Duration: o.duration,
		Clusters: []string{o.machine},
		Kinds:    kinds,
		Sizes:    o.sizes,
	}
	transport := "loopback (in-process client)"
	var s *serve.Server
	if o.addr != "" {
		transport = "wire (" + o.addr + ")"
		load.NewClient = func() (*serve.Client, error) { return serve.Dial("tcp", o.addr) }
	} else {
		table := syntheticTable(o.spec, kinds)
		if o.tablePath != "" {
			var err error
			table, err = autotune.Load(o.tablePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hanbench:", err)
				os.Exit(1)
			}
		}
		s = serve.NewServer(serve.Options{})
		s.PublishTable(o.machine, table)
		load.NewClient = func() (*serve.Client, error) { return serve.NewLocalClient(s), nil }
	}

	rep, err := serve.RunLoad(load)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hanbench:", err)
		os.Exit(1)
	}
	fmt.Printf("decision service load: %s, machine %s\n%s\n", transport, o.machine, rep)
	if s != nil {
		c := s.Counters()
		hitPct := 0.0
		if c.Decisions > 0 {
			hitPct = 100 * float64(c.CacheHits) / float64(c.Decisions)
		}
		fmt.Printf("server: %d decisions, %.1f%% cache hits, %d evictions, server-side p99 %s\n",
			c.Decisions, hitPct, c.Evictions, c.LatencyP99)
	}

	if o.metricsOut != "" && s != nil {
		reg := metrics.New()
		s.PublishMetrics(reg)
		f, err := os.Create(o.metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hanbench:", err)
			os.Exit(1)
		}
		err = reg.WriteOpenMetrics(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "hanbench:", err)
			os.Exit(1)
		}
	}

	if o.jsonOut != "" {
		out := map[string]any{
			"name":       "tuning-decision-service",
			"benchmark":  "hanbench -serve (make bench-serve)",
			"transport":  transport,
			"machine":    o.machine,
			"clients":    rep.Clients,
			"target_qps": o.qps,
			"duration_s": rep.Elapsed.Seconds(),
			"requests":   rep.Requests,
			"errors":     rep.Errors,
			"qps":        rep.QPS,
			"p50_us":     float64(rep.P50.Nanoseconds()) / 1e3,
			"p90_us":     float64(rep.P90.Nanoseconds()) / 1e3,
			"p99_us":     float64(rep.P99.Nanoseconds()) / 1e3,
		}
		buf, err := json.MarshalIndent(out, "", "  ")
		if err == nil {
			err = os.WriteFile(o.jsonOut, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "hanbench:", err)
			os.Exit(1)
		}
	}
}

func systemByName(name string, decide han.DecisionFunc) (bench.System, error) {
	switch name {
	case "HAN":
		return bench.HANSystem(decide), nil
	case "OpenMPI-default":
		return bench.RivalSystem(rivals.OpenMPIDefault), nil
	case "CrayMPI":
		return bench.RivalSystem(rivals.CrayMPI), nil
	case "IntelMPI":
		return bench.RivalSystem(rivals.IntelMPI), nil
	case "MVAPICH2":
		return bench.RivalSystem(rivals.MVAPICH2), nil
	}
	return bench.System{}, fmt.Errorf("unknown system %q", name)
}
